"""Tests for the health-aware pool, failover and graceful degradation."""

import numpy as np
import pytest

import repro.obs as obs
from repro.backend import (
    BackendPool,
    BreakerConfig,
    GpuMemoryError,
    NativeBackend,
    SimulatedGpuBackend,
)
from repro.core import SMiLerConfig
from repro.core.smiler import SMiLer
from repro.faults import FaultInjectingBackend, FaultProfile
from repro.service import ForecastError, PredictionService, ResiliencePolicy

CONFIG = SMiLerConfig(
    elv=(8, 16), ekv=(4, 8), rho=2, omega=4, horizons=(1, 3),
    predictor="ar",
)


def raw_history(n=600, seed=0, scale=50.0, offset=200.0):
    rng = np.random.default_rng(seed)
    return offset + scale * (
        np.sin(np.arange(n) / 9.0) + 0.05 * rng.normal(size=n)
    )


def make_service(**kwargs):
    return PredictionService(CONFIG, min_history=100, **kwargs)


class ExplodingMalloc(NativeBackend):
    """Malloc fails with a non-capacity error (counts against health)."""

    def malloc(self, nbytes, label="buffer"):
        raise RuntimeError("hardware says no")


class TestCircuitBreaker:
    def make_pool(self, n=2, threshold=2, cooldown=3):
        return BackendPool(
            [NativeBackend() for _ in range(n)],
            breaker=BreakerConfig(
                failure_threshold=threshold, cooldown_ops=cooldown
            ),
        )

    def test_config_validated(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_ops=0)

    def test_trips_at_threshold(self):
        pool = self.make_pool()
        pool.record_failure(0)
        assert pool.state(0) == "closed"
        pool.record_failure(0)
        assert pool.state(0) == "open"
        assert not pool.admits(0)
        assert pool.healthy_indices() == [1]
        assert pool.health(0).trips == 1

    def test_success_resets_the_streak(self):
        pool = self.make_pool()
        pool.record_failure(0)
        pool.record_success(0)
        pool.record_failure(0)
        assert pool.state(0) == "closed"

    def test_cooldown_then_half_open_probe(self):
        pool = self.make_pool()
        pool.record_failure(0)
        pool.record_failure(0)
        assert pool.state(0) == "open"
        for _ in range(3):  # cooldown_ops pool operations elsewhere
            pool.record_success(1)
        assert pool.state(0) == "half_open"
        assert pool.admits(0)
        pool.record_success(0)  # probe passes
        assert pool.state(0) == "closed"

    def test_half_open_probe_failure_retrips(self):
        pool = self.make_pool()
        pool.record_failure(0)
        pool.record_failure(0)
        for _ in range(3):
            pool.record_success(1)
        assert pool.state(0) == "half_open"
        pool.record_failure(0)  # probe fails: straight back to open
        assert pool.state(0) == "open"
        assert pool.health(0).trips == 2

    def test_mark_unhealthy_forces_open(self):
        pool = self.make_pool()
        pool.mark_unhealthy(0)
        assert pool.state(0) == "open"

    def test_allocate_skips_open_circuits(self):
        pool = self.make_pool()
        pool.mark_unhealthy(0)
        placement = pool.allocate(64, "sensor")
        assert placement.backend_index == 1

    def test_allocate_fails_open_when_every_breaker_is_open(self):
        pool = self.make_pool(n=1)
        pool.mark_unhealthy(0)
        placement = pool.allocate(64, "sensor")  # still served
        assert placement.backend_index == 0

    def test_capacity_refusal_is_not_a_health_failure(self):
        pool = BackendPool(
            [NativeBackend(capacity_bytes=100), NativeBackend()],
            breaker=BreakerConfig(failure_threshold=1),
        )
        placement = pool.allocate(1000, "big")
        assert placement.backend_index == 1
        assert pool.state(0) == "closed"
        assert pool.health(0).failures_total == 0

    def test_malloc_exception_counts_against_health(self):
        pool = BackendPool(
            [ExplodingMalloc(), NativeBackend(capacity_bytes=10**6)],
            breaker=BreakerConfig(failure_threshold=1),
        )
        # ExplodingMalloc has the most free bytes, so it is tried first.
        placement = pool.allocate(64, "sensor")
        assert placement.backend_index == 1
        assert pool.state(0) == "open"


class TestResizeAtomicity:
    """Regression tests for the resize leak: a failed resize used to
    free the old block and then lose it when the new malloc failed."""

    def faulty_backend(self, burst):
        return FaultInjectingBackend(
            NativeBackend(capacity_bytes=1000),
            FaultProfile(seed=0, malloc_error_rate=1.0, burst=burst),
        )

    def test_allocate_then_free_path_keeps_old_reservation(self):
        # Ticks: allocate=0; roomy resize mallocs new first at tick 1.
        backend = self.faulty_backend(burst=(1, 2))
        pool = BackendPool([backend])
        placement = pool.allocate(300, "sensor")
        with pytest.raises(GpuMemoryError):
            pool.resize(placement, 400)  # 400 <= 700 free: roomy path
        assert backend.allocated_bytes == 300  # old block untouched
        pool.release(placement)  # caller's handle still valid
        assert backend.allocated_bytes == 0

    def test_tight_path_restores_old_reservation(self):
        # Ticks: allocate=0; tight resize frees at 1, mallocs at 2 (the
        # injected failure); the restore malloc at tick 3 succeeds.
        backend = self.faulty_backend(burst=(2, 3))
        pool = BackendPool([backend])
        placement = pool.allocate(600, "sensor")
        with pytest.raises(GpuMemoryError) as excinfo:
            pool.resize(placement, 700)  # 700 > 400 free: tight path
        assert backend.allocated_bytes == 600  # reservation re-established
        restored = excinfo.value.placement  # fresh handle rides the error
        assert restored.allocation.nbytes == 600
        pool.release(restored)
        assert backend.allocated_bytes == 0

    def test_growth_beyond_capacity_refused_up_front(self):
        backend = NativeBackend(capacity_bytes=1000)
        pool = BackendPool([backend])
        placement = pool.allocate(600, "sensor")
        with pytest.raises(GpuMemoryError):
            pool.resize(placement, 1200)
        assert backend.allocated_bytes == 600


class TestDegradationLadder:
    def test_healthy_service_serves_ensemble(self):
        service = make_service()
        service.register("s1", raw_history())
        forecast = service.forecast("s1")
        assert forecast.source == "ensemble"
        assert not forecast.degraded

    def test_reduced_rung_when_full_ensemble_fails(self, monkeypatch):
        service = make_service()
        service.register("s1", raw_history())

        def broken_predict(self, horizon=None):
            raise RuntimeError("ensemble mixer down")

        monkeypatch.setattr(SMiLer, "predict", broken_predict)
        forecast = service.forecast("s1")
        assert forecast.source == "reduced"
        assert forecast.degraded
        assert np.isfinite(forecast.mean) and forecast.std > 0

    def test_ar_rung_when_backend_is_dead(self):
        backend = FaultInjectingBackend(
            SimulatedGpuBackend(), FaultProfile(dies_at_tick=10**6)
        )
        service = make_service(backends=backend)
        service.register("s1", raw_history())
        backend.profile = FaultProfile(dies_at_tick=0)  # dies now
        service.ingest("s1", 200.0)  # reading retained, answers stale
        forecast = service.forecast("s1")  # every backend rung fails
        assert forecast.source == "ar"
        assert forecast.degraded
        assert np.isfinite(forecast.mean) and forecast.std > 0

    def test_naive_rung_cannot_fail(self):
        service = make_service(resilience=ResiliencePolicy(ladder=("naive",)))
        service.register("s1", raw_history())
        forecast = service.forecast("s1")
        assert forecast.source == "naive"
        assert forecast.mean == pytest.approx(raw_history()[-1])
        assert forecast.std > 0

    def test_truncated_ladder_raises_forecast_error(self, monkeypatch):
        service = make_service(
            resilience=ResiliencePolicy(ladder=("ensemble",))
        )
        service.register("s1", raw_history())

        def broken_predict(self, horizon=None):
            raise RuntimeError("down")

        monkeypatch.setattr(SMiLer, "predict", broken_predict)
        with pytest.raises(ForecastError):
            service.forecast("s1")

    def test_nan_variance_never_served(self, monkeypatch):
        """Satellite: a non-PSD GP fit (NaN/zero variance) must degrade or
        raise, never reach the caller as a NaN interval."""
        from types import SimpleNamespace

        service = make_service(
            resilience=ResiliencePolicy(ladder=("ensemble", "ar"))
        )
        service.register("s1", raw_history())

        def nan_predict(self, horizon=None):
            bad = SimpleNamespace(mean=0.1, variance=float("nan"))
            return {h: bad for h in (self.config.horizons)}

        monkeypatch.setattr(SMiLer, "predict", nan_predict)
        forecast = service.forecast("s1")
        assert forecast.source == "ar"
        assert np.isfinite(forecast.std)

        service2 = make_service(
            resilience=ResiliencePolicy(ladder=("ensemble",))
        )
        service2.register("s1", raw_history())
        monkeypatch.setattr(SMiLer, "predict", nan_predict)
        with pytest.raises(ForecastError):
            service2.forecast("s1")

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(attempts=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(ladder=())
        with pytest.raises(ValueError):
            ResiliencePolicy(ladder=("ensemble", "prayer"))

    def test_degraded_forecasts_are_counted(self):
        obs.reset()
        obs.enable()
        try:
            service = make_service(
                resilience=ResiliencePolicy(ladder=("naive",))
            )
            service.register("s1", raw_history())
            service.forecast("s1")
            prom = obs.to_prometheus(obs.get_registry())
        finally:
            obs.disable()
            obs.reset()
        assert 'smiler_forecast_degraded_total{sensor_id="s1",source="naive"} 1' in prom


class TestForecastAllPartialBatch:
    def test_partial_batch_with_error_side_channel(self):
        service = make_service(
            resilience=ResiliencePolicy(ladder=("ensemble",))
        )
        service.register("good", raw_history())
        service.register("bad", raw_history(seed=3))
        smiler = service.sensor("bad")
        smiler.predict = lambda horizon=None: (_ for _ in ()).throw(
            RuntimeError("sensor-local meltdown")
        )
        batch = service.forecast_all()
        assert set(batch) == {"good"}
        assert not batch.ok
        assert isinstance(batch.errors["bad"], ForecastError)
        assert batch["good"].source == "ensemble"

    def test_clean_batch_is_ok_and_dictlike(self):
        service = make_service()
        service.register("a", raw_history())
        service.register("b", raw_history(seed=1))
        batch = service.forecast_all()
        assert batch.ok
        assert sorted(batch) == ["a", "b"]
        assert all(f.source == "ensemble" for f in batch.values())

    def test_bad_horizon_still_raises_up_front(self):
        service = make_service()
        service.register("a", raw_history())
        with pytest.raises(KeyError):
            service.forecast_all(horizon=9)


class TestFailover:
    def test_dead_backend_evacuated_and_fleet_keeps_serving(self):
        """The acceptance scenario: one of two backends dies mid-run; its
        sensors are evacuated and every sensor keeps being served."""
        dying = FaultInjectingBackend(
            SimulatedGpuBackend(), FaultProfile(dies_at_tick=60)
        )
        healthy = SimulatedGpuBackend()
        service = make_service(backends=[dying, healthy])
        rng = np.random.default_rng(0)
        for i in range(4):
            service.register(f"s{i}", raw_history(seed=i))
        assert service.sensors_per_backend() == [2, 2]

        for step in range(12):
            batch = service.forecast_all()
            assert batch.ok, batch.errors  # nobody ever drops
            assert len(batch) == 4
            for sid in batch:
                service.ingest(sid, 200.0 + float(rng.normal()))

        assert service.sensors_per_backend() == [0, 4]  # evacuated
        states = [b["health"]["state"] for b in service.status()["backends"]]
        assert states[0] in ("open", "half_open")
        assert states[1] == "closed"
        # And the fleet is fully recovered: full-ensemble service resumes.
        final = service.forecast_all()
        assert all(f.source == "ensemble" for f in final.values())

    def test_evacuate_moves_sensors_and_reports_them(self):
        service = make_service(
            backends=[SimulatedGpuBackend(), SimulatedGpuBackend()]
        )
        for i in range(4):
            service.register(f"s{i}", raw_history(seed=i))
        stranded = [
            sid for sid in service.sensor_ids
            if service.placement_of(sid) == 0
        ]
        moved = service.evacuate(0)
        assert moved == sorted(stranded)
        assert all(service.placement_of(sid) == 1 for sid in moved)
        assert service.sensors_per_backend()[0] == 0
        with pytest.raises(IndexError):
            service.evacuate(7)

    def test_evacuated_sensor_forecasts_match_fresh_build(self):
        """Migration rebuilds the index from the accrued series, so the
        moved sensor's forecast matches a never-moved twin."""
        service = make_service(
            backends=[SimulatedGpuBackend(), SimulatedGpuBackend()]
        )
        full = raw_history(n=620, seed=4)
        service.register("s1", full[:600])
        twin = make_service()
        twin.register("s1", full[:600])
        for value in full[600:610]:
            service.ingest("s1", value)
            twin.ingest("s1", value)
        source_index = service.placement_of("s1")
        service.evacuate(source_index)
        assert service.placement_of("s1") == 1 - source_index
        moved = service.forecast("s1")
        fresh = twin.forecast("s1")
        assert moved.source == fresh.source == "ensemble"
        assert moved.mean == pytest.approx(fresh.mean, rel=1e-4)

    def test_transient_burst_is_retried_bit_identically(self):
        """One injected kernel fault below the breaker threshold: the
        retry reruns the same kernels and serves bit-identical answers."""
        def run(backend):
            service = make_service(backends=backend)
            service.register("s1", raw_history())
            outs = []
            for value in (201.0, 199.5, 202.3, 198.7):
                forecast = service.forecast("s1")
                outs.append((forecast.mean, forecast.std, forecast.source))
                service.ingest("s1", value)
            return outs

        clean = run(SimulatedGpuBackend())
        faulty = run(FaultInjectingBackend(
            SimulatedGpuBackend(),
            FaultProfile(seed=0, kernel_error_rate=1.0, burst=(8, 9)),
        ))
        assert all(source == "ensemble" for _, _, source in faulty)
        assert faulty == clean
