"""Tests for the Matérn-5/2 and periodic kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import (
    GaussianProcessRegressor,
    Matern52Kernel,
    PeriodicKernel,
    fit_exact_gp,
    marginal_likelihood_objective,
)


def fd_check(kernel_cls, log_params, x, n_params):
    kernel = kernel_cls.from_log_params(np.asarray(log_params))
    grads = kernel.gradients(x)
    assert len(grads) == n_params
    eps = 1e-6
    for j in range(n_params):
        lp = np.asarray(log_params, dtype=float)
        lp[j] += eps
        up = kernel_cls.from_log_params(lp).matrix(x, noise=True)
        lp[j] -= 2 * eps
        down = kernel_cls.from_log_params(lp).matrix(x, noise=True)
        fd = (up - down) / (2 * eps)
        np.testing.assert_allclose(grads[j], fd, rtol=1e-4, atol=1e-7)


class TestMatern52:
    def test_diag_and_psd(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(12, 3))
        kernel = Matern52Kernel(1.5, 0.8, 0.2)
        cov = kernel.matrix(x, noise=True)
        assert (np.linalg.eigvalsh(cov) > 0).all()
        np.testing.assert_allclose(np.diag(cov), 1.5**2 + 0.2**2)

    def test_rougher_than_se_at_matched_scale(self):
        """Matérn decays polynomially-damped-exponential: heavier tail
        than the SE's Gaussian decay at large r."""
        from repro.gp import SquaredExponentialKernel

        x = np.array([[0.0], [3.0]])
        matern = Matern52Kernel(1.0, 1.0, 0.1).matrix(x)[0, 1]
        se = SquaredExponentialKernel(1.0, 1.0, 0.1).matrix(x)[0, 1]
        assert matern > se

    @settings(max_examples=10, deadline=None)
    @given(
        log_params=st.lists(st.floats(-0.8, 0.8), min_size=3, max_size=3),
        seed=st.integers(0, 30),
    )
    def test_gradients(self, log_params, seed):
        x = np.random.default_rng(seed).normal(size=(6, 2))
        fd_check(Matern52Kernel, log_params, x, 3)

    def test_log_roundtrip_and_replace(self):
        kernel = Matern52Kernel(2.0, 0.5, 0.1)
        again = Matern52Kernel.from_log_params(kernel.log_params)
        assert again.theta1 == pytest.approx(0.5)
        assert kernel.replace(theta1=3.0).theta1 == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Matern52Kernel(theta0=0.0)
        with pytest.raises(ValueError):
            Matern52Kernel().matrix(np.zeros((2, 1)), np.zeros((3, 1)), noise=True)

    def test_fits_with_generic_trainer(self):
        rng = np.random.default_rng(1)
        x = np.sort(rng.uniform(-3, 3, 60))[:, None]
        y = np.sin(2 * x[:, 0]) + 0.1 * rng.normal(size=60)
        gp = fit_exact_gp(x, y, kernel=Matern52Kernel(), max_iters=40)
        assert isinstance(gp.kernel, Matern52Kernel)
        mean, _ = gp.predict(x)
        assert float(np.mean(np.abs(mean - y))) < 0.15


class TestPeriodic:
    def test_exact_periodicity(self):
        kernel = PeriodicKernel(1.0, period=2.0, lengthscale=0.7, noise=0.1)
        x = np.array([[0.0], [2.0], [4.0], [1.0]])
        cov = kernel.matrix(x)
        # Points one full period apart are perfectly correlated.
        assert cov[0, 1] == pytest.approx(1.0)
        assert cov[0, 2] == pytest.approx(1.0)
        # Half a period apart: minimal correlation.
        assert cov[0, 3] < cov[0, 1]

    @settings(max_examples=10, deadline=None)
    @given(
        log_params=st.lists(st.floats(-0.5, 0.5), min_size=4, max_size=4),
        seed=st.integers(0, 30),
    )
    def test_gradients(self, log_params, seed):
        x = np.random.default_rng(seed).normal(size=(5, 1))
        fd_check(PeriodicKernel, log_params, x, 4)

    def test_gp_extrapolates_periodic_signal(self):
        """The killer feature: periodic kernels extrapolate seasons."""
        rng = np.random.default_rng(2)
        x = np.arange(0.0, 12.0, 0.25)[:, None]
        y = np.sin(2 * np.pi * x[:, 0] / 3.0) + 0.05 * rng.normal(size=x.shape[0])
        kernel = PeriodicKernel(1.0, period=3.0, lengthscale=1.0, noise=0.05)
        gp = GaussianProcessRegressor(kernel).fit(x, y)
        x_far = np.array([[30.0], [30.75]])
        mean, _ = gp.predict(x_far, include_noise=False)
        truth = np.sin(2 * np.pi * x_far[:, 0] / 3.0)
        np.testing.assert_allclose(mean, truth, atol=0.1)

    def test_objective_generic_dispatch(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(15, 1))
        y = rng.normal(size=15)
        kernel = PeriodicKernel()
        value, grads = marginal_likelihood_objective(
            kernel.log_params, x, y, kernel_cls=PeriodicKernel
        )
        assert np.isfinite(value)
        assert grads.shape == (4,)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicKernel(period=-1.0)
        with pytest.raises(ValueError):
            PeriodicKernel.from_log_params(np.zeros(3))
