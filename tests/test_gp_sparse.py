"""Tests for the sparse GP approximations (PSGP and VLGP)."""

import numpy as np
import pytest

from repro.gp import (
    GaussianProcessRegressor,
    ProjectedSparseGP,
    SquaredExponentialKernel,
    VariationalSparseGP,
    kmeans,
    select_active_points,
)


def toy_problem(n=120, seed=0):
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(-4, 4, size=n))[:, None]
    y = np.sin(1.5 * x[:, 0]) + 0.1 * rng.normal(size=n)
    return x, y


class TestSelection:
    def test_active_points_subset(self):
        x = np.arange(50.0)[:, None]
        active = select_active_points(x, 10, seed=1)
        assert active.shape == (10, 1)
        assert set(active[:, 0]).issubset(set(x[:, 0]))

    def test_active_points_capped(self):
        x = np.arange(5.0)[:, None]
        assert select_active_points(x, 99).shape == (5, 1)

    def test_active_points_validation(self):
        with pytest.raises(ValueError):
            select_active_points(np.zeros((5, 1)), 0)

    def test_kmeans_centroids_shape(self):
        rng = np.random.default_rng(0)
        x = np.concatenate([rng.normal(-5, 0.1, (30, 2)), rng.normal(5, 0.1, (30, 2))])
        centroids = kmeans(x, 2, seed=0)
        assert centroids.shape == (2, 2)
        # One centroid near each blob.
        signs = sorted(np.sign(centroids[:, 0]))
        assert signs == [-1.0, 1.0]

    def test_kmeans_validation(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((4, 2)), 0)


class TestProjectedSparseGP:
    def test_fit_predict_reasonable(self):
        x, y = toy_problem()
        model = ProjectedSparseGP(n_active=24, train_iters=30).fit(x, y)
        mean, var = model.predict(x)
        mae = float(np.mean(np.abs(mean - y)))
        assert mae < 0.25
        assert (var > 0).all()

    def test_more_active_points_fit_better(self):
        x, y = toy_problem(n=200, seed=1)
        coarse = ProjectedSparseGP(n_active=4, train_iters=25, seed=2).fit(x, y)
        fine = ProjectedSparseGP(n_active=64, train_iters=25, seed=2).fit(x, y)
        mae_coarse = float(np.mean(np.abs(coarse.predict(x)[0] - y)))
        mae_fine = float(np.mean(np.abs(fine.predict(x)[0] - y)))
        assert mae_fine < mae_coarse

    def test_likelihood_cost_scales_with_active_points(self):
        """Fig. 13's x-axis knob drives the O(n m^2) training cost."""
        x, y = toy_problem(n=150)
        small = ProjectedSparseGP(n_active=8, train_iters=20)
        small.fit(x, y)
        assert small.likelihood_evaluations > 0

    def test_full_rank_matches_exact_gp(self):
        """With m = n and shared kernel, DTC equals the exact GP."""
        x, y = toy_problem(n=25, seed=3)
        kernel = SquaredExponentialKernel(1.0, 1.0, 0.2)
        sparse = ProjectedSparseGP(n_active=25, kernel=kernel, train_iters=0)
        # Bypass training: fit with zero NM iterations keeps the kernel.
        sparse.fit(x, y)
        exact = GaussianProcessRegressor(sparse.kernel).fit(x, y)
        x_star = np.linspace(-3, 3, 7)[:, None]
        mean_s, var_s = sparse.predict(x_star)
        mean_e, var_e = exact.predict(x_star)
        np.testing.assert_allclose(mean_s, mean_e, atol=1e-5)
        np.testing.assert_allclose(var_s, var_e, atol=1e-4)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            ProjectedSparseGP().predict(np.zeros((1, 1)))

    def test_validation(self):
        with pytest.raises(ValueError):
            ProjectedSparseGP(n_active=0)
        with pytest.raises(ValueError):
            ProjectedSparseGP().fit(np.zeros((3, 1)), np.zeros(4))


class TestVariationalSparseGP:
    def test_fit_predict_reasonable(self):
        x, y = toy_problem(seed=4)
        model = VariationalSparseGP(n_inducing=24, train_iters=30).fit(x, y)
        mae = float(np.mean(np.abs(model.predict(x)[0] - y)))
        assert mae < 0.25

    def test_elbo_below_exact_marginal_likelihood(self):
        """Titsias' F is a lower bound of the exact log evidence."""
        x, y = toy_problem(n=60, seed=5)
        model = VariationalSparseGP(n_inducing=10, train_iters=25).fit(x, y)
        exact = GaussianProcessRegressor(model.kernel).fit(x, y)
        assert model.elbo() <= exact.log_marginal_likelihood() + 1e-6

    def test_more_inducing_raises_elbo(self):
        x, y = toy_problem(n=100, seed=6)
        kernel = SquaredExponentialKernel(1.0, 1.0, 0.2)
        few = VariationalSparseGP(n_inducing=3, kernel=kernel, train_iters=0).fit(x, y)
        many = VariationalSparseGP(n_inducing=50, kernel=kernel, train_iters=0).fit(x, y)
        assert many.elbo() >= few.elbo() - 1e-6

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            VariationalSparseGP().predict(np.zeros((1, 1)))

    def test_validation(self):
        with pytest.raises(ValueError):
            VariationalSparseGP(n_inducing=-1)
