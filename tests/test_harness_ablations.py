"""Structure tests for the ablation drivers (tiny workloads)."""

import numpy as np
import pytest

from repro.harness import (
    AccuracyScale,
    SearchScale,
    run_history_tradeoff,
    run_parameter_sensitivity,
    run_threshold_reuse_ablation,
    run_warmstart_ablation,
    run_window_reuse_ablation,
)

ACC = AccuracyScale(
    n_sensors=1, n_points=1200, test_points=25, steps=12,
    horizons=(1,), datasets=("ROAD",),
)
SEARCH = SearchScale(n_sensors=1, n_points=1500, continuous_steps=3)


@pytest.mark.slow
class TestWarmstart:
    def test_warmstart_is_cheaper_not_worse(self):
        result = run_warmstart_ablation(ACC)
        assert result.warm_seconds_per_query < result.cold_seconds_per_query
        # Warm starting must not cost real accuracy.
        assert result.warm_mae < result.cold_mae * 1.3
        assert "warm-start" in result.render()


class TestThresholdReuse:
    def test_both_variants_filter(self):
        result = run_threshold_reuse_ablation(SEARCH)
        total = SEARCH.n_points  # approximate candidate count per query
        assert 0 < result.reuse_unfiltered < total
        assert 0 < result.fresh_unfiltered < total
        assert "threshold" in result.render()


class TestWindowReuse:
    def test_ring_update_beats_rebuild(self):
        result = run_window_reuse_ablation(SEARCH)
        assert result.step_sim_s < result.rebuild_sim_s / 2
        assert "Fig. 6" in result.render()


class TestParameterSensitivity:
    def test_sweep_covers_grid(self):
        result = run_parameter_sensitivity(
            SEARCH, omegas=(8, 16), rhos=(4, 8)
        )
        assert len(result.rows) == 4
        assert all(t > 0 for *_, t in result.rows)
        assert "omega" in result.render()

    def test_wider_band_filters_worse(self):
        """Larger rho means wider envelopes and weaker bounds."""
        result = run_parameter_sensitivity(SEARCH, omegas=(8,), rhos=(2, 8))
        unfiltered = {rho: u for _, rho, u, _ in result.rows}
        assert unfiltered[8] >= unfiltered[2]


class TestHistoryTradeoff:
    def test_less_history_more_capacity(self):
        result = run_history_tradeoff(ACC, fractions=(0.25, 1.0))
        by_fraction = {f: (m, b, c) for f, m, b, c in result.rows}
        assert by_fraction[0.25][1] < by_fraction[1.0][1]  # memory
        assert by_fraction[0.25][2] > by_fraction[1.0][2]  # capacity
        assert np.isfinite(by_fraction[0.25][0])
        assert "capacity" in result.render().lower()


@pytest.mark.slow
class TestMeasureComparison:
    def test_structure_and_ranking(self):
        from repro.harness import run_measure_comparison

        result = run_measure_comparison(n_points=600, steps=5)
        assert set(result.mae) == {
            "DTW (rho=8)", "Euclidean", "ERP", "EDR", "LCSS"
        }
        assert all(v >= 0 for v in result.mae.values())
        assert "Similarity measures" in result.render()
