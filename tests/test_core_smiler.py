"""End-to-end tests for the SMiLer facade and the sensor fleet."""

import numpy as np
import pytest

from repro.core import SMiLer, SMiLerConfig, SensorFleet
from repro.gpu import DeviceSpec, GpuDevice, GpuMemoryError


def periodic_history(n=800, period=50, seed=0, noise=0.05):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return np.sin(2 * np.pi * t / period) + noise * rng.normal(size=n)


SMALL = SMiLerConfig(
    elv=(8, 16), ekv=(4, 8), rho=2, omega=4, horizons=(1,),
    predictor="ar", initial_train_iters=5, online_train_iters=2,
)
SMALL_GP = SMiLerConfig(
    elv=(8, 16), ekv=(4, 8), rho=2, omega=4, horizons=(1,),
    predictor="gp", initial_train_iters=8, online_train_iters=2,
)


class TestSingleSensor:
    def test_predict_then_observe_loop(self):
        history = periodic_history()
        smiler = SMiLer(history[:700], SMALL)
        errors = []
        for t in range(700, 760):
            out = smiler.predict()[1]
            errors.append(abs(out.mean - history[t]))
            assert out.variance > 0
            smiler.observe(history[t])
        assert float(np.mean(errors)) < 0.2

    def test_gp_predictor_also_tracks(self):
        history = periodic_history(seed=1)
        smiler = SMiLer(history[:700], SMALL_GP)
        errors = []
        for t in range(700, 730):
            out = smiler.predict()[1]
            errors.append(abs(out.mean - history[t]))
            smiler.observe(history[t])
        assert float(np.mean(errors)) < 0.25

    def test_multi_horizon_predictions(self):
        cfg = SMiLerConfig(
            elv=(8, 16), ekv=(4,), rho=2, omega=4, horizons=(1, 5),
            predictor="ar",
        )
        history = periodic_history(seed=2)
        smiler = SMiLer(history[:700], cfg)
        outs = smiler.predict()
        assert set(outs) == {1, 5}
        with pytest.raises(KeyError):
            smiler.predict(horizon=3)

    def test_now_advances_with_observe(self):
        history = periodic_history()
        smiler = SMiLer(history[:700], SMALL)
        assert smiler.now == 700
        smiler.predict()
        smiler.observe(history[700])
        assert smiler.now == 701
        np.testing.assert_allclose(smiler.series[-1], history[700])

    def test_repeated_predict_same_step_is_cached(self):
        history = periodic_history()
        smiler = SMiLer(history[:700], SMALL)
        out1 = smiler.predict()[1]
        search_time = smiler.backend.elapsed_s
        out2 = smiler.predict()[1]
        assert out1.mean == out2.mean
        # The second call reuses the cached kNN answers: no new kernels
        # beyond the (tiny) ensemble work.
        assert smiler.backend.elapsed_s == search_time

    def test_auto_tuning_updates_weights(self):
        history = periodic_history(seed=3)
        smiler = SMiLer(history[:700], SMALL)
        before = dict(smiler.ensemble(1).weights())
        for t in range(700, 715):
            smiler.predict()
            smiler.observe(history[t])
        after = smiler.ensemble(1).weights()
        assert smiler.ensemble(1).updates == 15
        assert before != after

    def test_observe_without_predict_is_safe(self):
        history = periodic_history()
        smiler = SMiLer(history[:700], SMALL)
        smiler.observe(history[700])  # no pending predictions: no crash
        assert smiler.now == 701

    def test_ablation_modes(self):
        history = periodic_history(seed=4)
        ne = SMiLer(
            history[:700],
            SMiLerConfig(
                elv=(8, 16), ekv=(4, 8), rho=2, omega=4, predictor="ar",
                ensemble=False, single_k=4, single_d=16,
            ),
        )
        out = ne.predict()[1]
        assert np.isfinite(out.mean)
        assert len(ne.ensemble(1).cells) == 1

        ns = SMiLer(
            history[:700],
            SMiLerConfig(
                elv=(8, 16), ekv=(4, 8), rho=2, omega=4, predictor="ar",
                self_adaptive=False,
            ),
        )
        ns.predict()
        ns.observe(history[700])
        for w in ns.ensemble(1).weights().values():
            assert w == pytest.approx(1.0 / 4)


class TestFleet:
    def test_fleet_predict_observe(self):
        histories = [periodic_history(seed=s)[:600] for s in range(3)]
        futures = [periodic_history(seed=s)[600:620] for s in range(3)]
        fleet = SensorFleet(histories, SMALL)
        assert len(fleet) == 3
        for step in range(5):
            outs = fleet.predict_all()
            assert len(outs) == 3
            fleet.observe_all([f[step] for f in futures])

    def test_fleet_shares_device_memory(self):
        histories = [periodic_history(seed=s)[:600] for s in range(2)]
        fleet = SensorFleet(histories, SMALL)
        assert fleet.backend.allocated_bytes >= fleet.memory_bytes()

    def test_fleet_out_of_memory(self):
        tiny = GpuDevice(DeviceSpec(memory_bytes=50_000))
        histories = [periodic_history(seed=s)[:600] for s in range(8)]
        with pytest.raises(GpuMemoryError):
            SensorFleet(histories, SMALL, backend=tiny)

    def test_fleet_validation(self):
        with pytest.raises(ValueError):
            SensorFleet([], SMALL)
        fleet = SensorFleet([periodic_history()[:600]], SMALL)
        with pytest.raises(ValueError):
            fleet.observe_all([1.0, 2.0])


class TestDiagnostics:
    def test_snapshot_fields(self):
        from repro.backend import SimulatedGpuBackend

        history = periodic_history()
        # device_sim_seconds is a simulated-backend concept: pin it so the
        # assertion holds under any REPRO_BACKEND default.
        smiler = SMiLer(history[:700], SMALL, backend=SimulatedGpuBackend())
        for t in range(700, 706):
            smiler.predict()
            smiler.observe(history[t])
        diag = smiler.diagnostics()
        assert diag["sensor_id"] == "sensor-0"
        assert diag["now"] == 706
        assert diag["series_length"] == 706
        assert diag["memory_bytes"] > 0
        assert diag["device_sim_seconds"] > 0
        assert diag["index_reuse"]["rows_reused"] > 0
        per_h = diag["horizons"][1]
        assert per_h["updates"] == 6
        assert abs(sum(per_h["weights"].values()) - 1.0) < 1e-9

    def test_asleep_cells_listed(self):
        history = periodic_history(seed=9)
        smiler = SMiLer(history[:700], SMALL)
        ensemble = smiler.ensemble(1)
        cell = ensemble.cells[0]
        ensemble.state(cell).asleep = True
        assert cell in smiler.diagnostics()["horizons"][1]["asleep"]
