"""Tests for MAE / RMSE / MNLPD."""

import numpy as np
import pytest

from repro.metrics import mae, mnlpd, nlpd_terms, rmse


class TestPointErrors:
    def test_mae_known(self):
        assert mae([1.0, 2.0], [2.0, 0.0]) == pytest.approx(1.5)

    def test_rmse_known(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(0)
        truth = rng.normal(size=50)
        pred = rng.normal(size=50)
        assert rmse(truth, pred) >= mae(truth, pred)

    def test_perfect_prediction(self):
        x = np.arange(5.0)
        assert mae(x, x) == 0.0
        assert rmse(x, x) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            mae([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mae([], [])


class TestMnlpd:
    def test_standard_normal_density(self):
        # -log N(0; 0, 1) = 0.5 log(2 pi)
        assert mnlpd([0.0], [0.0], [1.0]) == pytest.approx(
            0.5 * np.log(2 * np.pi)
        )

    def test_wrong_confident_prediction_punished(self):
        calibrated = mnlpd([1.0], [0.0], [1.0])
        overconfident = mnlpd([1.0], [0.0], [0.01])
        assert overconfident > calibrated

    def test_underconfident_also_worse_than_calibrated(self):
        calibrated = mnlpd([0.0], [0.0], [1e-4])
        vague = mnlpd([0.0], [0.0], [100.0])
        assert vague > calibrated

    def test_terms_shape(self):
        terms = nlpd_terms([0.0, 1.0], [0.0, 1.0], [1.0, 1.0])
        assert terms.shape == (2,)

    def test_variance_validation(self):
        with pytest.raises(ValueError):
            mnlpd([0.0], [0.0], [0.0])
        with pytest.raises(ValueError):
            mnlpd([0.0], [0.0], [1.0, 2.0])
