"""Tests for the alternative similarity measures (Euclidean/LCSS/ERP/EDR)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dtw import dtw_distance
from repro.dtw.measures import (
    edr_distance,
    erp_distance,
    euclidean_distance,
    lcss_distance,
    lcss_similarity,
)

floats = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)


def seq(length):
    return arrays(np.float64, (length,), elements=floats)


class TestEuclidean:
    def test_known_value(self):
        assert euclidean_distance([0.0, 1.0], [1.0, 1.0]) == 1.0

    def test_equals_dtw_with_zero_band(self):
        rng = np.random.default_rng(0)
        q, c = rng.normal(size=12), rng.normal(size=12)
        assert euclidean_distance(q, c) == pytest.approx(
            dtw_distance(q, c, rho=0)
        )

    def test_dominates_dtw(self):
        """DTW can only reduce the cost relative to rigid alignment."""
        rng = np.random.default_rng(1)
        for _ in range(20):
            q, c = rng.normal(size=15), rng.normal(size=15)
            assert dtw_distance(q, c, rho=4) <= euclidean_distance(q, c) + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            euclidean_distance([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            euclidean_distance([], [])


class TestLcss:
    def test_identical_sequences_full_match(self):
        x = np.arange(8.0)
        assert lcss_similarity(x, x, epsilon=0.0) == 8
        assert lcss_distance(x, x, epsilon=0.0) == 0.0

    def test_disjoint_sequences_no_match(self):
        assert lcss_similarity(np.zeros(5), np.full(5, 10.0), epsilon=1.0) == 0

    def test_classic_subsequence(self):
        q = np.array([1.0, 2.0, 3.0, 4.0])
        c = np.array([2.0, 3.0, 9.0, 4.0])
        assert lcss_similarity(q, c, epsilon=0.1) == 3

    def test_band_restricts_matches(self):
        q = np.array([1.0, 0.0, 0.0, 0.0])
        c = np.array([0.0, 0.0, 0.0, 1.0])
        assert lcss_similarity(q, c, epsilon=0.1, rho=None) >= 3
        assert lcss_similarity(q, c, epsilon=0.1, rho=1) <= 3

    @settings(max_examples=25, deadline=None)
    @given(data=st.data(), n=st.integers(1, 15), m=st.integers(1, 15))
    def test_similarity_bounded(self, data, n, m):
        q = data.draw(seq(n))
        c = data.draw(seq(m))
        sim = lcss_similarity(q, c, epsilon=0.5)
        assert 0 <= sim <= min(n, m)
        assert 0.0 <= lcss_distance(q, c, epsilon=0.5) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            lcss_similarity([1.0], [1.0], epsilon=-1.0)
        with pytest.raises(ValueError):
            lcss_similarity([1.0], [1.0], epsilon=0.1, rho=-1)


class TestErp:
    def test_identical_zero(self):
        x = np.arange(6.0)
        assert erp_distance(x, x) == pytest.approx(0.0)

    def test_pure_gap_cost(self):
        # Aligning against an empty-ish candidate: every point pays |x - g|.
        q = np.array([1.0, 2.0])
        c = np.array([1.0, 2.0, 5.0])
        assert erp_distance(q, c, gap=0.0) == pytest.approx(5.0)

    def test_triangle_inequality(self):
        """ERP is a metric — spot-check the triangle inequality."""
        rng = np.random.default_rng(2)
        for _ in range(30):
            a, b, c = (rng.normal(size=rng.integers(3, 8)) for _ in range(3))
            ab = erp_distance(a, b)
            bc = erp_distance(b, c)
            ac = erp_distance(a, c)
            assert ac <= ab + bc + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(data=st.data(), n=st.integers(1, 12), m=st.integers(1, 12))
    def test_symmetry(self, data, n, m):
        q = data.draw(seq(n))
        c = data.draw(seq(m))
        assert erp_distance(q, c) == pytest.approx(erp_distance(c, q))

    def test_validation(self):
        with pytest.raises(ValueError):
            erp_distance([1.0], [1.0], rho=-2)


class TestEdr:
    def test_identical_zero(self):
        x = np.arange(5.0)
        assert edr_distance(x, x, epsilon=0.0) == 0

    def test_single_substitution(self):
        q = np.array([1.0, 2.0, 3.0])
        c = np.array([1.0, 9.0, 3.0])
        assert edr_distance(q, c, epsilon=0.1) == 1

    def test_insertion_cost(self):
        q = np.array([1.0, 2.0])
        c = np.array([1.0, 5.0, 2.0])
        assert edr_distance(q, c, epsilon=0.1) == 1

    def test_bounded_by_lengths(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            n, m = rng.integers(1, 10, size=2)
            q, c = rng.normal(size=n), rng.normal(size=m)
            dist = edr_distance(q, c, epsilon=0.25)
            assert 0 <= dist <= max(n, m)

    def test_robust_to_one_outlier_vs_euclidean(self):
        """EDR charges an outlier 1 edit; Euclidean charges its square."""
        q = np.zeros(10)
        clean = np.zeros(10)
        dirty = clean.copy()
        dirty[4] = 100.0
        assert edr_distance(q, dirty, epsilon=0.1) == 1
        assert euclidean_distance(q, dirty) == pytest.approx(10_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            edr_distance([1.0], [1.0], epsilon=-0.5)
