"""The PR-2 ``.device`` aliases now warn: every public alias emits a
``DeprecationWarning`` pointing at its ``.backend`` replacement, while
the real attributes (``SimulatedGpuBackend.device``,
``ParallelFleet.devices``) stay silent."""

import warnings

import numpy as np
import pytest

from repro import PredictionService, SMiLer, SMiLerConfig
from repro.backend import NativeBackend, SimulatedGpuBackend
from repro.core.smiler import SensorFleet
from repro.harness.search_experiments import SearchScale

CONFIG = SMiLerConfig(
    elv=(8, 16), ekv=(4, 8), rho=2, omega=4, horizons=(1,), predictor="ar",
)


def history(n: int = 300) -> np.ndarray:
    return 50.0 + 10.0 * np.sin(np.arange(n) / 9.0)


class TestDeviceAliasWarns:
    def test_prediction_service(self):
        service = PredictionService(
            config=CONFIG, backends=NativeBackend(), min_history=256
        )
        with pytest.warns(DeprecationWarning, match="PredictionService.device"):
            alias = service.device
        assert alias is service.backends[0]

    def test_smiler(self):
        smiler = SMiLer(history(), CONFIG, backend=NativeBackend())
        with pytest.warns(DeprecationWarning, match="SMiLer.device"):
            alias = smiler.device
        assert alias is smiler.backend

    def test_sensor_fleet(self):
        fleet = SensorFleet([history()], CONFIG, backend=NativeBackend())
        with pytest.warns(DeprecationWarning, match="SensorFleet.device"):
            alias = fleet.device
        assert alias is fleet.backend

    def test_index_layers(self):
        smiler = SMiLer(history(), CONFIG, backend=NativeBackend())
        engine = smiler.engine
        with pytest.warns(DeprecationWarning, match="SuffixKnnEngine.device"):
            assert engine.device is engine.backend
        with pytest.warns(
            DeprecationWarning, match="WindowLevelIndex.device"
        ):
            assert engine.window_index.device is engine.window_index.backend

    def test_search_scale(self):
        scale = SearchScale(n_sensors=1, n_points=500, continuous_steps=1)
        with pytest.warns(DeprecationWarning, match="SearchScale.device"):
            backend = scale.device()
        assert isinstance(backend, SimulatedGpuBackend)

    def test_simulated_backend_device_is_not_deprecated(self):
        backend = SimulatedGpuBackend()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert backend.device is not None  # the real GpuDevice attr
