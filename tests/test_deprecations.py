"""The PR-2 ``.device`` aliases are gone: the deprecation cycle ended
(warn → removed), so every former alias now raises ``AttributeError``
and the ``MultiGpuFleet`` shim is no longer importable.  The real
attributes that merely *looked* like aliases
(``SimulatedGpuBackend.device``) survive unchanged."""

import warnings

import numpy as np
import pytest

from repro import PredictionService, SMiLer, SMiLerConfig
from repro.backend import NativeBackend, SimulatedGpuBackend
from repro.core.smiler import SensorFleet
from repro.harness.search_experiments import SearchScale

CONFIG = SMiLerConfig(
    elv=(8, 16), ekv=(4, 8), rho=2, omega=4, horizons=(1,), predictor="ar",
)


def history(n: int = 300) -> np.ndarray:
    return 50.0 + 10.0 * np.sin(np.arange(n) / 9.0)


class TestDeviceAliasesRemoved:
    def test_prediction_service(self):
        service = PredictionService(
            config=CONFIG, backends=NativeBackend(), min_history=256
        )
        assert not hasattr(service, "device")
        assert service.backends  # the replacement surface

    def test_smiler(self):
        smiler = SMiLer(history(), CONFIG, backend=NativeBackend())
        assert not hasattr(smiler, "device")
        assert smiler.backend is not None

    def test_sensor_fleet(self):
        fleet = SensorFleet([history()], CONFIG, backend=NativeBackend())
        assert not hasattr(fleet, "device")
        assert fleet.backend is not None

    def test_index_layers(self):
        smiler = SMiLer(history(), CONFIG, backend=NativeBackend())
        engine = smiler.engine
        assert not hasattr(engine, "device")
        assert not hasattr(engine.window_index, "device")
        assert engine.backend is engine.window_index.backend

    def test_search_scale(self):
        scale = SearchScale(n_sensors=1, n_points=500, continuous_steps=1)
        assert not hasattr(scale, "device")
        assert isinstance(scale.backend(), SimulatedGpuBackend)

    def test_multi_gpu_fleet_shim_removed(self):
        import repro.core
        import repro.core.scaleout

        assert not hasattr(repro.core, "MultiGpuFleet")
        assert not hasattr(repro.core.scaleout, "MultiGpuFleet")
        with pytest.raises(ImportError):
            from repro.core import MultiGpuFleet  # noqa: F401

    def test_simulated_backend_device_is_not_deprecated(self):
        backend = SimulatedGpuBackend()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert backend.device is not None  # the real GpuDevice attr
