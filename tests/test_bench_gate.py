"""The benchmark regression gate, driven entirely by fixture payloads.

No benchmark actually runs here: every test builds the JSON documents
the benches emit (smoke-shaped) and feeds them to ``benchmarks/gate.py``
directly, so the pass/fail/skip semantics — thresholds, host-awareness,
hard invariants — are pinned without benchmark-scale runtimes.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import pathlib
import sys

import pytest

_GATE_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "gate.py"
)
_spec = importlib.util.spec_from_file_location("bench_gate", _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
sys.modules["bench_gate"] = gate  # @dataclass resolves the module by name
_spec.loader.exec_module(gate)


def search_payload(cpu_count=1):
    return {
        "benchmark": "search",
        "config": {"points": 4000, "steps": 4, "smoke": True},
        "host": {"cpu_count": cpu_count},
        "results": {
            "baseline": {
                "wall_s": 0.3, "sim_s": 1.6e-3, "candidates_total": 47262,
                "candidates_per_s": 160000.0, "unfiltered_rate": 0.13,
                "verified_rate": 0.13,
            },
            "cascade": {
                "wall_s": 0.29, "sim_s": 1.5e-3, "candidates_total": 47262,
                "candidates_per_s": 165000.0, "unfiltered_rate": 0.008,
                "verified_rate": 0.008,
                "prune_rates": {
                    "kim": 0.957, "window": 0.025,
                    "improved": 0.010, "abandoned": 0.002,
                },
            },
            "speedup_candidates_per_s": 1.03,
            "modes_identical": True,
            "reference_exact": True,
        },
    }


def serving_payload(cpu_count=1, meaningful=False):
    def row(workers, engine):
        return {
            "workers": workers, "engine": engine,
            "p50_batch_s": 1.4e-3, "p99_batch_s": 1.6e-3,
            "throughput_forecasts_per_s": 350.0, "wall_total_s": 0.05,
            "sim_serial_s": 1.05e-3, "sim_parallel_s": 2.6e-4,
            "sim_parallel_speedup": 4.0,
            "identical_to_sequential": True,
            "wall_speedup_vs_sequential": 1.0,
            "wall_speedup_meaningful": meaningful,
        }

    return {
        "benchmark": "serving",
        "config": {"sensors": 8, "backends": 4},
        "host": {"cpu_count": cpu_count},
        "results": [row(1, "inline"), row(4, "thread")],
    }


def ablation_payload(cpu_count=1):
    def run(rid, component, search):
        return {
            "run_id": rid, "component": component,
            "layer": None if component is None else "search",
            "claims_exact": True, "reused": False,
            "search": search,
            "serving": {
                "backend": "simulated", "wall_s": 0.1,
                "p50_batch_s": 0.015, "sim_s": 1.8e-3,
                "sim_parallel_s": 9e-4, "mae": 0.093,
                "degraded_forecasts": 0, "forecast_digest": "abc",
            },
        }

    base_search = {
        "wall_s": 0.3, "sim_s": 1.3e-3, "candidates_total": 20000,
        "verified_rate": 0.039, "unfiltered_rate": 0.039,
        "prune_rates": {"kim": 0.9, "window": 0.03, "improved": 0.02,
                        "abandoned": 0.005},
        "reference_exact": True,
    }
    return {
        "benchmark": "ablation",
        "config": {"workload": {"seed": 2015}, "smoke": True},
        "host": {"cpu_count": cpu_count,
                 "wall_speedup_meaningful": cpu_count > 1},
        "baseline_run_id": "abl-base",
        "runs": [
            run("abl-base", None, base_search),
            run("abl-casc", "cascade", dict(base_search, sim_s=1.5e-3)),
        ],
        "ranking": [],
    }


def failures(checks):
    return [c.name for c in checks if c.failed]


def by_name(checks, name):
    return next(c for c in checks if c.name == name)


class TestSearchGate:
    def test_identical_payloads_pass(self):
        p = search_payload()
        checks = gate.compare_search(p, copy.deepcopy(p), 10.0)
        assert not failures(checks)

    def test_sim_time_regression_fails(self):
        fresh = search_payload()
        fresh["results"]["cascade"]["sim_s"] *= 1.25
        checks = gate.compare_search(search_payload(), fresh, 10.0)
        assert failures(checks) == ["search.cascade.sim_s"]
        # A generous threshold tolerates the same delta.
        assert not failures(
            gate.compare_search(search_payload(), fresh, 30.0)
        )

    def test_prune_rate_collapse_fails(self):
        fresh = search_payload()
        fresh["results"]["cascade"]["prune_rates"]["kim"] = 0.4
        checks = gate.compare_search(search_payload(), fresh, 10.0)
        assert "search.cascade.prune_rate_total" in failures(checks)

    def test_improvement_never_fails(self):
        fresh = search_payload()
        fresh["results"]["cascade"]["sim_s"] *= 0.5  # got faster
        assert not failures(
            gate.compare_search(search_payload(), fresh, 10.0)
        )

    def test_lost_exactness_fails_at_any_threshold(self):
        fresh = search_payload()
        fresh["results"]["modes_identical"] = False
        checks = gate.compare_search(search_payload(), fresh, 1e9)
        assert "search.modes_identical" in failures(checks)

    def test_wall_skipped_on_single_core_host(self):
        fresh = search_payload(cpu_count=1)
        fresh["results"]["speedup_candidates_per_s"] = 0.1  # huge wall hit
        checks = gate.compare_search(search_payload(), fresh, 10.0)
        assert by_name(
            checks, "search.speedup_candidates_per_s"
        ).status == "skip"
        assert not failures(checks)

    def test_wall_enforced_on_multicore_host(self):
        fresh = search_payload(cpu_count=8)
        fresh["results"]["speedup_candidates_per_s"] = 0.1
        checks = gate.compare_search(search_payload(cpu_count=8), fresh, 10.0)
        assert "search.speedup_candidates_per_s" in failures(checks)


class TestServingGate:
    def test_identical_payloads_pass(self):
        p = serving_payload()
        assert not failures(gate.compare_serving(p, copy.deepcopy(p), 10.0))

    def test_sim_speedup_regression_fails(self):
        fresh = serving_payload()
        fresh["results"][1]["sim_parallel_speedup"] = 2.0  # was 4.0
        checks = gate.compare_serving(serving_payload(), fresh, 10.0)
        assert failures(checks) == ["serving.w4.thread.sim_parallel_speedup"]

    def test_parity_loss_fails(self):
        fresh = serving_payload()
        fresh["results"][0]["identical_to_sequential"] = False
        checks = gate.compare_serving(serving_payload(), fresh, 10.0)
        assert "serving.w1.inline.identical_to_sequential" in failures(checks)

    def test_unknown_row_fails(self):
        fresh = serving_payload()
        fresh["results"][1]["workers"] = 16  # no such baseline row
        checks = gate.compare_serving(serving_payload(), fresh, 10.0)
        assert "serving.w16.thread" in failures(checks)

    def test_wall_skipped_unless_row_says_meaningful(self):
        fresh = serving_payload(cpu_count=8, meaningful=False)
        fresh["results"][0]["throughput_forecasts_per_s"] = 10.0
        checks = gate.compare_serving(
            serving_payload(cpu_count=8, meaningful=False), fresh, 10.0
        )
        assert not failures(checks)
        fresh = serving_payload(cpu_count=8, meaningful=True)
        fresh["results"][0]["throughput_forecasts_per_s"] = 10.0
        checks = gate.compare_serving(
            serving_payload(cpu_count=8, meaningful=True), fresh, 10.0
        )
        assert "serving.w1.inline.throughput_forecasts_per_s" in failures(
            checks
        )


class TestAblationGate:
    def test_identical_payloads_pass(self):
        p = ablation_payload()
        assert not failures(gate.compare_ablation(p, copy.deepcopy(p), 10.0))

    def test_run_id_drift_fails(self):
        fresh = ablation_payload()
        fresh["runs"][1]["run_id"] = "abl-drifted"
        checks = gate.compare_ablation(ablation_payload(), fresh, 10.0)
        assert "ablation.run_ids" in failures(checks)

    def test_accuracy_regression_fails(self):
        fresh = ablation_payload()
        fresh["runs"][0]["serving"]["mae"] *= 1.5
        checks = gate.compare_ablation(ablation_payload(), fresh, 10.0)
        assert "ablation.baseline.mae" in failures(checks)

    def test_wall_skipped_on_single_core(self):
        fresh = ablation_payload(cpu_count=1)
        fresh["runs"][0]["serving"]["wall_s"] = 99.0
        checks = gate.compare_ablation(ablation_payload(), fresh, 10.0)
        assert by_name(checks, "ablation.baseline.wall_s").status == "skip"
        assert not failures(checks)


class TestDispatchAndDirectories:
    def test_unknown_benchmark_is_a_gate_error(self):
        with pytest.raises(gate.GateError, match="no comparator"):
            gate.compare_payloads({"benchmark": "mystery"}, {}, 10.0)

    def test_mismatched_kinds_are_a_gate_error(self):
        with pytest.raises(gate.GateError, match="expected 'search'"):
            gate.compare_search(search_payload(), serving_payload(), 10.0)

    def test_missing_field_is_a_gate_error(self):
        broken = search_payload()
        del broken["results"]["cascade"]["sim_s"]
        with pytest.raises(gate.GateError, match="missing"):
            gate.compare_search(search_payload(), broken, 10.0)

    def _write_dirs(self, tmp_path, fresh_mutator=None):
        baseline_dir = tmp_path / "baselines"
        fresh_dir = tmp_path / "fresh"
        baseline_dir.mkdir()
        fresh_dir.mkdir()
        docs = {
            "BENCH_search.json": search_payload(),
            "BENCH_serving.json": serving_payload(),
            "BENCH_ablation.json": ablation_payload(),
        }
        for name, doc in docs.items():
            (baseline_dir / name).write_text(json.dumps(doc))
        if fresh_mutator is not None:
            fresh_mutator(docs)
        for name, doc in docs.items():
            (fresh_dir / name).write_text(json.dumps(doc))
        return baseline_dir, fresh_dir

    def test_green_directories_exit_zero(self, tmp_path, capsys):
        baseline_dir, fresh_dir = self._write_dirs(tmp_path)
        checks = gate.gate_directories(baseline_dir, fresh_dir, 10.0)
        assert not failures(checks)
        code = gate.main([
            "--baseline-dir", str(baseline_dir),
            "--fresh-dir", str(fresh_dir),
        ])
        assert code == 0
        assert "0 failed" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        def mutate(docs):
            docs["BENCH_search.json"]["results"]["cascade"]["sim_s"] *= 2

        baseline_dir, fresh_dir = self._write_dirs(tmp_path, mutate)
        code = gate.main([
            "--baseline-dir", str(baseline_dir),
            "--fresh-dir", str(fresh_dir),
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_fresh_file_is_a_failure(self, tmp_path):
        baseline_dir, fresh_dir = self._write_dirs(tmp_path)
        (fresh_dir / "BENCH_serving.json").unlink()
        checks = gate.gate_directories(baseline_dir, fresh_dir, 10.0)
        assert "BENCH_serving.json" in failures(checks)

    def test_empty_baseline_dir_exits_two(self, tmp_path, capsys):
        (tmp_path / "baselines").mkdir()
        (tmp_path / "fresh").mkdir()
        code = gate.main([
            "--baseline-dir", str(tmp_path / "baselines"),
            "--fresh-dir", str(tmp_path / "fresh"),
        ])
        assert code == 2
        assert "gate error" in capsys.readouterr().err

    def test_committed_baselines_parse_and_self_compare(self):
        """The real committed baselines must stay gate-compatible."""
        checks = gate.gate_directories(
            gate.BASELINE_DIR, gate.BASELINE_DIR, 10.0
        )
        assert not failures(checks)
        kinds = {c.name.split(".")[0] for c in checks}
        assert {"search", "serving", "ablation"} <= kinds
