"""Tests for the SGD linear models and their forecaster wrappers."""

import numpy as np
import pytest

from repro.baselines import (
    LinearSGDRegressor,
    OnlineRRForecaster,
    OnlineSVRForecaster,
    SgdRRForecaster,
    SgdSVRForecaster,
)


def linear_stream(n=800, seed=0):
    """A stream whose next value is a fixed linear function of the past."""
    rng = np.random.default_rng(seed)
    values = [0.5, -0.2, 0.1]
    for _ in range(n - 3):
        values.append(0.6 * values[-1] + 0.3 * values[-2] + 0.02 * rng.normal())
    return np.asarray(values)


class TestLinearSGDRegressor:
    def test_learns_linear_relation(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(500, 3))
        w_true = np.array([1.0, -2.0, 0.5])
        y = x @ w_true + 0.3
        model = LinearSGDRegressor(3, loss="huber", epsilon=1.0, eta0=0.1)
        model.fit(x, y, epochs=30)
        np.testing.assert_allclose(model.weights, w_true, atol=0.1)
        assert model.bias == pytest.approx(0.3, abs=0.1)

    def test_epsilon_insensitive_ignores_small_errors(self):
        model = LinearSGDRegressor(2, loss="epsilon_insensitive", epsilon=10.0)
        w_before = model.weights.copy()
        model.partial_fit(np.array([1.0, 1.0]), 0.5)  # residual inside tube
        np.testing.assert_array_equal(model.weights, w_before)

    def test_partial_fit_returns_residual(self):
        model = LinearSGDRegressor(2)
        residual = model.partial_fit(np.array([1.0, 2.0]), 3.0)
        assert residual == pytest.approx(-3.0)

    def test_unknown_loss(self):
        with pytest.raises(ValueError):
            LinearSGDRegressor(2, loss="nope")

    def test_shape_validation(self):
        model = LinearSGDRegressor(2)
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            LinearSGDRegressor(0)


class TestOfflineForecasters:
    @pytest.mark.parametrize("cls", [SgdSVRForecaster, SgdRRForecaster])
    def test_predicts_ar_stream(self, cls):
        stream = linear_stream()
        model = cls(segment_length=8, horizons=(1,), epochs=10)
        model.fit(stream[:600])
        errors = []
        for t in range(600, 790):
            mean, var = model.predict(stream[:t], 1)
            errors.append(abs(mean - stream[t]))
            assert var > 0
        assert float(np.mean(errors)) < 0.1

    def test_multi_horizon_models(self):
        stream = linear_stream()
        model = SgdSVRForecaster(segment_length=8, horizons=(1, 5))
        model.fit(stream[:500])
        m1, _ = model.predict(stream[:600], 1)
        m5, _ = model.predict(stream[:600], 5)
        assert np.isfinite(m1) and np.isfinite(m5)
        with pytest.raises(KeyError):
            model.predict(stream[:600], 3)

    def test_is_offline_flags(self):
        assert SgdSVRForecaster().is_offline
        assert SgdRRForecaster().is_offline
        assert not OnlineSVRForecaster().is_offline
        assert not OnlineRRForecaster().is_offline

    def test_context_too_short(self):
        model = SgdSVRForecaster(segment_length=16, horizons=(1,))
        model.fit(linear_stream(200))
        with pytest.raises(ValueError):
            model.predict(np.zeros(4), 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SgdSVRForecaster(segment_length=0)
        with pytest.raises(ValueError):
            SgdSVRForecaster(horizons=())
        with pytest.raises(ValueError):
            SgdSVRForecaster(horizons=(0,))


class TestOnlineForecasters:
    @pytest.mark.parametrize("cls", [OnlineSVRForecaster, OnlineRRForecaster])
    def test_online_updates_reduce_error(self, cls):
        """A drifting stream should be tracked thanks to observe()."""
        rng = np.random.default_rng(2)
        stream = list(linear_stream(400, seed=3))
        model = cls(segment_length=8, horizons=(1,), eta0=0.1)
        model.fit(np.asarray(stream))
        # Shift the data-generating process: add a level offset.
        errors_early, errors_late = [], []
        offset = 0.6  # well outside the epsilon tube
        for t in range(300):
            true = 0.6 * stream[-1] + 0.3 * stream[-2] + offset + 0.02 * rng.normal()
            mean, _ = model.predict(np.asarray(stream), 1)
            (errors_early if t < 100 else errors_late).append(abs(mean - true))
            model.observe(true)
            stream.append(true)
        assert np.mean(errors_late) < np.mean(errors_early)

    def test_observe_buffer_bounded(self):
        model = OnlineSVRForecaster(segment_length=4, horizons=(1,))
        model.fit(linear_stream(100))
        for v in np.zeros(500):
            model.observe(v)
        assert len(model._buffer) <= 4 * (4 + 1) + 1
