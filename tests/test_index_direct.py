"""Tests for the SMiLer-Dir direct LB_en computation."""

import numpy as np
import pytest

from repro.dtw import compute_envelope, dtw_distance, lb_profile
from repro.gpu import GpuDevice
from repro.index import direct_lb_en


def make_series(n=200, seed=0):
    rng = np.random.default_rng(seed)
    return np.sin(np.arange(n) / 6.0) + 0.2 * rng.normal(size=n)


class TestDirectLbEn:
    def test_matches_lb_profile(self):
        series = make_series()
        master = series[-24:]
        result = direct_lb_en(GpuDevice(), master, series, (12, 24), rho=3)
        for d in (12, 24):
            query = master[master.size - d :]
            lbeq, lbec = lb_profile(query, series, 3)
            np.testing.assert_allclose(result[d], np.maximum(lbeq, lbec))

    def test_bounds_hold(self):
        series = make_series(seed=1)
        master = series[-16:]
        result = direct_lb_en(GpuDevice(), master, series, (8, 16), rho=2)
        for d in (8, 16):
            query = master[master.size - d :]
            for t in range(0, series.size - d + 1, 7):
                dist = dtw_distance(query, series[t : t + d], rho=2)
                assert result[d][t] <= dist + 1e-9

    def test_accounts_device_time(self):
        series = make_series()
        device = GpuDevice()
        direct_lb_en(device, series[-16:], series, (8, 16), rho=2)
        assert device.elapsed_s > 0
        assert "direct_lb_en" in device.cost.per_kernel_s

    def test_duplicate_lengths_deduplicated(self):
        series = make_series()
        result = direct_lb_en(
            GpuDevice(), series[-16:], series, (8, 8, 16), rho=2
        )
        assert set(result) == {8, 16}
