"""Tests for LB_Keogh / LB_EQ / LB_EC / LB_en and the profile helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dtw import (
    compute_envelope,
    dtw_distance,
    lb_ec,
    lb_en,
    lb_eq,
    lb_keogh,
    lb_profile,
    window_pair_lb_matrices,
)
from repro.timeseries import disjoint_windows, sliding_windows_right_to_left

floats = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)


def seq(length):
    return arrays(np.float64, (length,), elements=floats)


class TestLowerBoundProperty:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), length=st.integers(2, 24), rho=st.integers(0, 6))
    def test_lb_never_exceeds_dtw(self, data, length, rho):
        q = data.draw(seq(length))
        c = data.draw(seq(length))
        dist = dtw_distance(q, c, rho=rho)
        assert lb_eq(q, c, rho) <= dist + 1e-9
        assert lb_ec(q, c, rho) <= dist + 1e-9
        assert lb_en(q, c, rho) <= dist + 1e-9

    def test_lb_en_is_max(self):
        rng = np.random.default_rng(0)
        q, c = rng.normal(size=16), rng.normal(size=16)
        assert lb_en(q, c, 3) == max(lb_eq(q, c, 3), lb_ec(q, c, 3))

    def test_lb_en_tighter_than_parts(self):
        rng = np.random.default_rng(1)
        tighter_than_eq = tighter_than_ec = 0
        for _ in range(50):
            q, c = rng.normal(size=20), rng.normal(size=20)
            en, eq_, ec_ = lb_en(q, c, 2), lb_eq(q, c, 2), lb_ec(q, c, 2)
            tighter_than_eq += en > eq_
            tighter_than_ec += en > ec_
        # On random data each one-sided bound loses sometimes.
        assert tighter_than_eq > 0
        assert tighter_than_ec > 0

    def test_identical_sequences_zero(self):
        x = np.arange(8.0)
        assert lb_en(x, x, 2) == 0.0

    def test_lb_keogh_zero_inside_envelope(self):
        x = np.array([0.0, 1.0, 0.0, -1.0])
        env = compute_envelope(x, 1)
        inside = np.array([0.5, 0.5, -0.5, -0.5])
        assert lb_keogh(env, inside) == 0.0

    def test_lb_keogh_length_mismatch(self):
        env = compute_envelope(np.arange(4.0), 1)
        with pytest.raises(ValueError):
            lb_keogh(env, np.arange(5.0))


class TestLbProfile:
    @settings(max_examples=25, deadline=None)
    @given(
        data=st.data(),
        d=st.integers(3, 12),
        n=st.integers(16, 48),
        rho=st.integers(0, 4),
    )
    def test_profile_bounds_every_segment(self, data, d, n, rho):
        q = data.draw(seq(d))
        series = data.draw(seq(n))
        lbeq, lbec = lb_profile(q, series, rho)
        assert lbeq.size == n - d + 1
        for t in range(n - d + 1):
            dist = dtw_distance(q, series[t : t + d], rho=rho)
            assert lbeq[t] <= dist + 1e-9
            assert lbec[t] <= dist + 1e-9

    def test_profile_query_too_long(self):
        with pytest.raises(ValueError):
            lb_profile(np.arange(10.0), np.arange(5.0), 2)

    def test_profile_exact_match_is_zero(self):
        series = np.sin(np.arange(50.0))
        q = series[20:30].copy()
        lbeq, lbec = lb_profile(q, series, 3)
        assert lbeq[20] == 0.0
        assert lbec[20] == 0.0


class TestWindowPairMatrices:
    def _build(self, query, series, omega, rho):
        q_env = compute_envelope(query, rho)
        s_env = compute_envelope(series, rho)
        sw = sliding_windows_right_to_left(query, omega)
        n_sw = sw.shape[0]
        d = query.size
        sw_upper = np.stack(
            [q_env.upper[d - b - omega : d - b] for b in range(n_sw)]
        )
        sw_lower = np.stack(
            [q_env.lower[d - b - omega : d - b] for b in range(n_sw)]
        )
        dw = disjoint_windows(series, omega)
        n_dw = dw.shape[0]
        dw_upper = s_env.upper[: n_dw * omega].reshape(n_dw, omega)
        dw_lower = s_env.lower[: n_dw * omega].reshape(n_dw, omega)
        return window_pair_lb_matrices(sw, sw_upper, sw_lower, dw, dw_upper, dw_lower)

    def test_shapes(self):
        rng = np.random.default_rng(0)
        query, series = rng.normal(size=12), rng.normal(size=40)
        lbeq, lbec = self._build(query, series, omega=4, rho=2)
        assert lbeq.shape == (9, 10)
        assert lbec.shape == (9, 10)
        assert (lbeq >= 0).all() and (lbec >= 0).all()

    def test_empty(self):
        lbeq, lbec = window_pair_lb_matrices(
            np.empty((0, 4)), np.empty((0, 4)), np.empty((0, 4)),
            np.empty((0, 4)), np.empty((0, 4)), np.empty((0, 4)),
        )
        assert lbeq.shape == (0, 0)

    def test_entries_match_scalar_computation(self):
        """Entry (b, r) equals the omega-point partial LB computed directly."""
        rng = np.random.default_rng(1)
        query, series = rng.normal(size=10), rng.normal(size=24)
        omega, rho = 3, 2
        lbeq, lbec = self._build(query, series, omega, rho)
        q_env = compute_envelope(query, rho)
        s_env = compute_envelope(series, rho)
        d = query.size
        for b in range(lbeq.shape[0]):
            sw_slice = slice(d - b - omega, d - b)
            for r in range(lbeq.shape[1]):
                dw_slice = slice(r * omega, (r + 1) * omega)
                dwv = series[dw_slice]
                above = np.clip(dwv - q_env.upper[sw_slice], 0, None)
                below = np.clip(q_env.lower[sw_slice] - dwv, 0, None)
                assert lbeq[b, r] == pytest.approx((above**2 + below**2).sum())
                swv = query[sw_slice]
                above = np.clip(swv - s_env.upper[dw_slice], 0, None)
                below = np.clip(s_env.lower[dw_slice] - swv, 0, None)
                assert lbec[b, r] == pytest.approx((above**2 + below**2).sum())
