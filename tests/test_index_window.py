"""Tests for the window-level index and its continuous (ring) reuse."""

import numpy as np
import pytest

from repro.gpu import GpuDevice
from repro.index import WindowLevelIndex


def make_series(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.sin(np.arange(n) / 6.0) + 0.15 * rng.normal(size=n)


def fresh_index(series, master, omega=4, rho=2):
    idx = WindowLevelIndex(series, master.size, omega, rho, backend=GpuDevice())
    idx.build(master)
    return idx


class TestBuild:
    def test_shapes(self):
        series = make_series(64)
        master = series[-12:]
        idx = fresh_index(series, master)
        lbeq, lbec = idx.posting_matrices()
        assert lbeq.shape == (9, 16)  # n_sw = 12-4+1, n_dw = 64/4
        assert lbec.shape == (9, 16)
        assert (lbeq >= 0).all() and (lbec >= 0).all()

    def test_master_shorter_than_omega_rejected(self):
        with pytest.raises(ValueError):
            WindowLevelIndex(make_series(64), 3, omega=4, rho=1)

    def test_series_shorter_than_master_rejected(self):
        with pytest.raises(ValueError):
            WindowLevelIndex(make_series(8), 12, omega=4, rho=1)

    def test_wrong_master_length_rejected(self):
        idx = WindowLevelIndex(make_series(64), 12, omega=4, rho=1)
        with pytest.raises(ValueError):
            idx.build(np.zeros(10))

    def test_step_before_build_rejected(self):
        idx = WindowLevelIndex(make_series(64), 12, omega=4, rho=1)
        with pytest.raises(RuntimeError):
            idx.step(0.0)

    def test_build_counts_gpu_time(self):
        series = make_series(64)
        idx = fresh_index(series, series[-12:])
        assert idx.backend.elapsed_s > 0


class TestContinuousReuse:
    def _run_steps(self, n_steps, omega=4, rho=2, n=80, master_len=12):
        series = make_series(n)
        future = make_series(n_steps, seed=99) * 0.5
        idx = fresh_index(series, series[-master_len:], omega, rho)
        current = series.copy()
        master = series[-master_len:].copy()
        for p in future:
            idx.step(p)
            current = np.append(current, p)
            master = np.append(master[1:], p)
        return idx, current, master

    def test_lbec_matches_fresh_rebuild(self):
        """LB_EC posting lists survive relabeling byte-for-byte."""
        idx, series, master = self._run_steps(9)
        fresh = fresh_index(series, master)
        _, lbec_stepped = idx.posting_matrices()
        _, lbec_fresh = fresh.posting_matrices()
        np.testing.assert_allclose(lbec_stepped, lbec_fresh, atol=1e-12)

    def test_lbeq_right_rows_match_fresh(self):
        """Rows b <= rho are recomputed each step and must match fresh."""
        idx, series, master = self._run_steps(7)
        fresh = fresh_index(series, master)
        lbeq_stepped, _ = idx.posting_matrices()
        lbeq_fresh, _ = fresh.posting_matrices()
        rho = idx.rho
        np.testing.assert_allclose(
            lbeq_stepped[: rho + 1], lbeq_fresh[: rho + 1], atol=1e-12
        )

    def test_stale_lbeq_rows_stay_valid_lower_bounds(self):
        """Rows b > rho keep stale (wider-envelope) values: <= fresh."""
        idx, series, master = self._run_steps(11)
        fresh = fresh_index(series, master)
        lbeq_stepped, _ = idx.posting_matrices()
        lbeq_fresh, _ = fresh.posting_matrices()
        assert (lbeq_stepped <= lbeq_fresh + 1e-9).all()

    def test_interior_rows_equal_fresh(self):
        """Rows away from both master-query ends have no boundary effect."""
        idx, series, master = self._run_steps(6, master_len=16)
        fresh = fresh_index(series, master)
        lbeq_stepped, _ = idx.posting_matrices()
        lbeq_fresh, _ = fresh.posting_matrices()
        rho, n_sw = idx.rho, idx.n_sw
        interior = slice(rho + 1, n_sw - rho)
        np.testing.assert_allclose(
            lbeq_stepped[interior], lbeq_fresh[interior], atol=1e-12
        )

    def test_reuse_counters(self):
        idx, _, _ = self._run_steps(5)
        # Each step rebuilds 1 row fully, refreshes rho LB_EQ rows and
        # reuses the rest.
        assert idx.rows_built_full == idx.n_sw + 5
        assert idx.rows_recomputed_lbeq == 5 * idx.rho
        assert idx.rows_reused == 5 * (idx.n_sw - idx.rho - 1)

    def test_series_grows(self):
        idx, series, _ = self._run_steps(8, n=60)
        assert idx.series_length == 68
        np.testing.assert_allclose(idx.series, series)

    def test_new_disjoint_windows_appear(self):
        idx, series, master = self._run_steps(8, n=60, omega=4)
        assert idx.n_dw == 68 // 4
        fresh = fresh_index(series, master)
        assert fresh.n_dw == idx.n_dw

    def test_memory_bytes_positive_and_growing(self):
        series = make_series(64)
        idx = fresh_index(series, series[-12:])
        before = idx.memory_bytes()
        for p in make_series(8, seed=5):
            idx.step(p)
        assert idx.memory_bytes() > before

    def test_step_is_cheaper_than_rebuild(self):
        """Simulated GPU kernel time of a step must undercut a rebuild.

        Launch overhead is zeroed so the comparison isolates the work the
        ring reuse avoids (at paper scale the work term dominates anyway).
        """
        from repro.gpu import DeviceSpec

        series = make_series(12000)
        master = series[-96:]
        device = GpuDevice(DeviceSpec(launch_overhead_s=0.0))
        idx = WindowLevelIndex(series, 96, 16, 8, backend=device)
        idx.build(master)
        build_time = device.elapsed_s
        device.reset_time()
        idx.step(0.1)
        step_time = device.elapsed_s
        assert step_time < build_time / 2


class TestBufferGrowth:
    def test_many_steps_grow_series_and_dw_capacity(self):
        """Stepping past the initial buffer must transparently regrow."""
        series = make_series(60)
        idx = fresh_index(series, series[-12:], omega=4, rho=2)
        future = make_series(100, seed=42)
        for p in future:
            idx.step(float(p))
        assert idx.series_length == 160
        assert idx.n_dw == 160 // 4
        # Fresh rebuild agrees on the reusable LB_EC side.
        current = np.concatenate([series, future])
        master = current[-12:]
        fresh = fresh_index(current, master)
        _, lbec_stepped = idx.posting_matrices()
        _, lbec_fresh = fresh.posting_matrices()
        np.testing.assert_allclose(lbec_stepped, lbec_fresh, atol=1e-12)
