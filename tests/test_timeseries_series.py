"""Tests for repro.timeseries.series."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timeseries import (
    TimeSeries,
    ZNormStats,
    segment_matrix,
    sliding_segments,
    train_test_split_tail,
)


class TestTimeSeries:
    def test_len_and_values(self):
        ts = TimeSeries([1.0, 2.0, 3.0])
        assert len(ts) == 3
        np.testing.assert_array_equal(ts.values, [1.0, 2.0, 3.0])

    def test_values_view_is_read_only(self):
        ts = TimeSeries([1.0, 2.0])
        with pytest.raises(ValueError):
            ts.values[0] = 9.0

    def test_append_grows_buffer(self):
        ts = TimeSeries([])
        for i in range(200):
            ts.append(float(i))
        assert len(ts) == 200
        np.testing.assert_array_equal(ts.values, np.arange(200.0))

    def test_extend(self):
        ts = TimeSeries([0.0])
        ts.extend([1.0, 2.0])
        np.testing.assert_array_equal(ts.values, [0.0, 1.0, 2.0])

    def test_segment_matches_paper_definition(self):
        ts = TimeSeries(np.arange(10.0))
        np.testing.assert_array_equal(ts.segment(3, 4), [3.0, 4.0, 5.0, 6.0])

    def test_segment_out_of_range(self):
        ts = TimeSeries(np.arange(5.0))
        with pytest.raises(IndexError):
            ts.segment(3, 4)
        with pytest.raises(IndexError):
            ts.segment(-1, 2)
        with pytest.raises(IndexError):
            ts.segment(0, 0)

    def test_suffix(self):
        ts = TimeSeries(np.arange(6.0))
        np.testing.assert_array_equal(ts.suffix(2), [4.0, 5.0])

    def test_suffix_too_long(self):
        ts = TimeSeries(np.arange(3.0))
        with pytest.raises(IndexError):
            ts.suffix(4)

    def test_append_then_suffix_sees_new_point(self):
        ts = TimeSeries([1.0, 2.0])
        ts.append(3.0)
        np.testing.assert_array_equal(ts.suffix(2), [2.0, 3.0])


class TestZNorm:
    def test_roundtrip(self):
        ts = TimeSeries([5.0, 7.0, 9.0, 11.0])
        stats = ts.znorm_stats()
        z = stats.apply(ts.values)
        np.testing.assert_allclose(stats.invert(z), ts.values)

    def test_normalised_stats(self):
        ts = TimeSeries(np.random.default_rng(0).normal(3.0, 2.0, size=500))
        z = ts.znormalised()
        assert abs(float(np.mean(z.values))) < 1e-9
        assert abs(float(np.std(z.values)) - 1.0) < 1e-9

    def test_constant_series_does_not_divide_by_zero(self):
        ts = TimeSeries([4.0, 4.0, 4.0])
        z = ts.znormalised()
        assert np.isfinite(z.values).all()

    def test_invert_variance(self):
        stats = ZNormStats(mean=0.0, std=3.0)
        np.testing.assert_allclose(stats.invert_variance(np.array([2.0])), [18.0])


class TestSegmentHelpers:
    def test_sliding_segments_shape(self):
        segs = sliding_segments(np.arange(10.0), 4)
        assert segs.shape == (7, 4)
        np.testing.assert_array_equal(segs[2], [2.0, 3.0, 4.0, 5.0])

    def test_sliding_segments_bad_length(self):
        with pytest.raises(ValueError):
            sliding_segments(np.arange(3.0), 5)
        with pytest.raises(ValueError):
            sliding_segments(np.arange(3.0), 0)

    def test_segment_matrix_targets(self):
        values = np.arange(10.0)
        X, y, starts = segment_matrix(values, length=3, horizon=2)
        # segment starting at t covers t..t+2, target is value at t+2+2.
        assert X.shape == (6, 3)
        np.testing.assert_array_equal(y, values[4:10])
        np.testing.assert_array_equal(starts, np.arange(6))

    def test_segment_matrix_horizon_validation(self):
        with pytest.raises(ValueError):
            segment_matrix(np.arange(10.0), 3, 0)

    def test_segment_matrix_too_short(self):
        with pytest.raises(ValueError):
            segment_matrix(np.arange(4.0), 3, 5)

    @given(
        n=st.integers(10, 60),
        d=st.integers(1, 8),
        h=st.integers(1, 5),
    )
    def test_segment_matrix_alignment_property(self, n, d, h):
        values = np.arange(float(n))
        if n - d - h + 1 <= 0:
            with pytest.raises(ValueError):
                segment_matrix(values, d, h)
            return
        X, y, starts = segment_matrix(values, d, h)
        for j in range(X.shape[0]):
            t = starts[j]
            np.testing.assert_array_equal(X[j], values[t : t + d])
            assert y[j] == values[t + d - 1 + h]


class TestSplit:
    def test_tail_split(self):
        train, test = train_test_split_tail(np.arange(10.0), 3)
        np.testing.assert_array_equal(train, np.arange(7.0))
        np.testing.assert_array_equal(test, [7.0, 8.0, 9.0])

    def test_tail_split_validation(self):
        with pytest.raises(ValueError):
            train_test_split_tail(np.arange(5.0), 5)
        with pytest.raises(ValueError):
            train_test_split_tail(np.arange(5.0), 0)
