"""Tests for the simulated GPU device and cost model."""

import pytest

from repro.gpu import (
    CPU_SPEC,
    CpuCostModel,
    DeviceSpec,
    GpuDevice,
    GpuMemoryError,
)


class TestCostModel:
    def test_launch_accumulates_time(self):
        dev = GpuDevice()
        t1 = dev.launch("a", n_blocks=14, ops_per_thread=1000.0)
        t2 = dev.launch("a", n_blocks=14, ops_per_thread=1000.0)
        assert t1 > 0 and t2 > 0
        assert dev.elapsed_s == pytest.approx(t1 + t2)

    def test_wave_scheduling(self):
        """2x the blocks of one full wave should take ~2x the wave time."""
        spec = DeviceSpec(launch_overhead_s=0.0)
        one = GpuDevice(spec)
        two = GpuDevice(spec)
        one.launch("k", n_blocks=spec.n_sms, ops_per_thread=1e6)
        two.launch("k", n_blocks=2 * spec.n_sms, ops_per_thread=1e6)
        assert two.elapsed_s == pytest.approx(2 * one.elapsed_s)

    def test_parallelism_beats_serial(self):
        """The same op count runs far faster on the GPU than the CPU model."""
        ops = 1e9
        gpu = GpuDevice(DeviceSpec(launch_overhead_s=0.0))
        # Spread the ops across a full wave of blocks and threads.
        spec = gpu.spec
        per_thread = ops / (spec.n_sms * 256)
        gpu.launch("k", n_blocks=spec.n_sms, ops_per_thread=per_thread)
        cpu = CpuCostModel()
        cpu.execute(ops)
        assert gpu.elapsed_s < cpu.elapsed_s / 50

    def test_zero_blocks_is_free(self):
        dev = GpuDevice()
        assert dev.launch("noop", 0, 100.0) == 0.0
        assert dev.cost.launches == 0

    def test_invalid_threads(self):
        dev = GpuDevice()
        with pytest.raises(ValueError):
            dev.launch("bad", 1, 1.0, threads_per_block=0)

    def test_per_kernel_breakdown(self):
        dev = GpuDevice()
        dev.launch("a", 1, 10.0)
        dev.launch("b", 1, 10.0)
        assert set(dev.cost.per_kernel_s) == {"a", "b"}

    def test_reset(self):
        dev = GpuDevice()
        dev.launch("a", 1, 10.0)
        dev.reset_time()
        assert dev.elapsed_s == 0.0

    def test_cpu_spec_is_serial(self):
        assert CPU_SPEC.total_cores == 1


class TestDeviceMemory:
    def test_malloc_free_roundtrip(self):
        dev = GpuDevice()
        handle = dev.malloc(1024, "index")
        assert dev.allocated_bytes == 1024
        dev.free(handle)
        assert dev.allocated_bytes == 0

    def test_out_of_memory(self):
        dev = GpuDevice(DeviceSpec(memory_bytes=1000))
        dev.malloc(900)
        with pytest.raises(GpuMemoryError):
            dev.malloc(200)

    def test_double_free_rejected(self):
        dev = GpuDevice()
        handle = dev.malloc(10)
        dev.free(handle)
        with pytest.raises(KeyError):
            dev.free(handle)

    def test_negative_allocation(self):
        dev = GpuDevice()
        with pytest.raises(ValueError):
            dev.malloc(-1)

    def test_live_allocations_ordered(self):
        dev = GpuDevice()
        a = dev.malloc(1, "a")
        b = dev.malloc(2, "b")
        assert [h.label for h in dev.live_allocations()] == ["a", "b"]
        dev.free(a)
        assert [h.label for h in dev.live_allocations()] == ["b"]
        assert b.nbytes == 2

    def test_default_capacity_is_6gb(self):
        assert GpuDevice().spec.memory_bytes == 6 * 1024**3


class TestWorkConservingMode:
    def test_fractional_waves(self):
        """Work-conserving: 7 blocks on 14 SMs cost half a wave."""
        spec = DeviceSpec(launch_overhead_s=0.0, work_conserving=True)
        half = GpuDevice(spec)
        full = GpuDevice(spec)
        half.launch("k", n_blocks=7, ops_per_thread=1e6)
        full.launch("k", n_blocks=14, ops_per_thread=1e6)
        assert half.elapsed_s == pytest.approx(full.elapsed_s / 2)

    def test_quantised_default_rounds_up(self):
        spec = DeviceSpec(launch_overhead_s=0.0, work_conserving=False)
        dev = GpuDevice(spec)
        one_block = dev.launch("k", n_blocks=1, ops_per_thread=1e6)
        fifteen = dev.launch("k", n_blocks=15, ops_per_thread=1e6)
        # 15 blocks on 14 SMs need two full waves.
        assert fifteen == pytest.approx(2 * one_block)

    def test_modes_agree_on_full_waves(self):
        conserving = GpuDevice(DeviceSpec(launch_overhead_s=0.0, work_conserving=True))
        quantised = GpuDevice(DeviceSpec(launch_overhead_s=0.0, work_conserving=False))
        conserving.launch("k", n_blocks=28, ops_per_thread=1e5)
        quantised.launch("k", n_blocks=28, ops_per_thread=1e5)
        assert conserving.elapsed_s == pytest.approx(quantised.elapsed_s)
