"""The ablation harness: registry integrity, stable run IDs, scoring,
and the exactness contract.

The expensive end-to-end study path is exercised once on a micro
workload (`TestStudyEndToEnd`); everything else runs on synthetic
`RunResult` records so the determinism and failure properties are
checked without benchmark-scale runtimes.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.ablation import (
    AblationExactnessError,
    AblationWorkload,
    Component,
    DEFAULT_COMPONENTS,
    RunResult,
    SMOKE_WORKLOAD,
    StudyResult,
    apply_patch,
    bench_payload,
    check_exactness,
    default_registry,
    enumerate_runs,
    render_report,
    run_id,
    run_study,
    score_study,
    validate_component,
    validate_registry,
)
from repro.backend.pool import BreakerConfig
from repro.core.config import SMiLerConfig
from repro.index.suffix_search import SuffixSearchConfig
from repro.service import ServiceConfig

#: Seconds-fast workload for the one real end-to-end study in this file.
MICRO = AblationWorkload(
    n_sensors=2, n_backends=2, n_points=600, steps=3,
    search_points=1_500, search_steps=2, search_item_lengths=(16, 32),
    search_rho=8, search_omega=8,
)


def make_serving(sim_s=1.0, mae=0.1, digest="d0", backend="simulated",
                 wall_s=1.0):
    return {
        "backend": backend, "wall_s": wall_s, "p50_batch_s": 0.01,
        "sim_s": sim_s, "sim_parallel_s": sim_s, "mae": mae,
        "degraded_forecasts": 0, "forecast_digest": digest,
    }


def make_search(sim_s=1.0, verified_rate=0.1, reference_exact=True):
    return {
        "wall_s": 1.0, "sim_s": sim_s, "candidates_total": 1000,
        "verified_rate": verified_rate, "unfiltered_rate": verified_rate,
        "prune_rates": {"kim": 0.5, "window": 0.2, "improved": 0.1,
                        "abandoned": 0.05},
        "reference_exact": reference_exact,
    }


def make_run(rid, component, *, layer="search", claims_exact=True,
             search=None, serving=None):
    return RunResult(
        run_id=rid, component=component,
        layer=None if component is None else layer,
        claims_exact=claims_exact, search=search,
        serving=serving if serving is not None else make_serving(),
    )


class TestRegistry:
    def test_default_registry_validates(self):
        assert default_registry() == DEFAULT_COMPONENTS

    def test_covers_the_required_surface(self):
        """The ISSUE's minimum component set, by name."""
        names = {c.name for c in DEFAULT_COMPONENTS}
        required = {
            "cascade", "lb-kim", "lb-improved", "early-abandon",
            "envelope-reuse", "engine-thread", "engine-process",
            "breaker", "ensemble", "auto-tuning", "simulated-backend",
        }
        assert required <= names
        assert len(names) >= 8

    def test_every_patched_knob_exists_on_its_config(self):
        """The rename trip-wire: a patch must name only real dataclass
        fields, so renaming a knob breaks this test, not the study."""
        field_sets = {
            "search": {f.name for f in dataclasses.fields(SuffixSearchConfig)},
            "smiler": {f.name for f in dataclasses.fields(SMiLerConfig)},
            "service": {f.name for f in dataclasses.fields(ServiceConfig)},
            "breaker": {f.name for f in dataclasses.fields(BreakerConfig)},
            "backend": {"kind"},
        }
        for component in DEFAULT_COMPONENTS:
            for key in component.patched_fields():
                prefix, _, field_name = key.partition(".")
                assert field_name in field_sets[prefix], (
                    f"{component.name}: {key} names a missing field"
                )

    def test_renamed_knob_is_rejected(self):
        bogus = Component(
            name="bogus", layer="search", description="renamed knob",
            patch=(("search.cascade_enabled", False),),
        )
        with pytest.raises(ValueError, match="no field 'cascade_enabled'"):
            validate_component(bogus)

    def test_unknown_target_engine_and_backend_are_rejected(self):
        for patch, match in [
            ((("nonsense.x", 1),), "unknown patch target"),
            ((("service.engine", "quantum"),), "unknown engine"),
            ((("backend.kind", "tpu"),), "unknown backend kind"),
            ((("search", True),), "must be dotted"),
        ]:
            with pytest.raises(ValueError, match=match):
                validate_component(Component(
                    name="x", layer="l", description="d", patch=patch,
                ))

    def test_duplicate_names_are_rejected(self):
        dup = DEFAULT_COMPONENTS + (DEFAULT_COMPONENTS[0],)
        with pytest.raises(ValueError, match="duplicate"):
            validate_registry(dup)

    def test_empty_patch_is_rejected(self):
        with pytest.raises(ValueError, match="non-empty patch"):
            Component(name="x", layer="l", description="d", patch=())


class TestApplyPatch:
    def test_baseline_is_everything_on(self):
        setup = apply_patch(MICRO, None)
        assert setup.search.cascade and setup.search.lb_kim
        assert setup.backend_kind == "simulated"

    def test_search_patch_mirrors_onto_smiler_config(self):
        cascade_off = next(
            c for c in DEFAULT_COMPONENTS if c.name == "cascade"
        )
        setup = apply_patch(MICRO, cascade_off)
        assert setup.search.cascade is False
        assert setup.smiler.cascade is False  # end-to-end, not search-only

    def test_engine_and_backend_patches(self):
        by_name = {c.name: c for c in DEFAULT_COMPONENTS}
        setup = apply_patch(MICRO, by_name["engine-thread"])
        assert setup.service.engine == "thread"
        assert setup.service.max_workers == 4
        setup = apply_patch(MICRO, by_name["simulated-backend"])
        assert setup.backend_kind == "native"


class TestRunIds:
    def test_stable_within_process(self):
        comp = DEFAULT_COMPONENTS[0]
        assert run_id(MICRO, comp) == run_id(MICRO, comp)
        assert run_id(MICRO, None) == run_id(MICRO, None)

    def test_distinct_per_component_and_workload(self):
        ids = {run_id(MICRO, c) for c in DEFAULT_COMPONENTS}
        ids.add(run_id(MICRO, None))
        assert len(ids) == len(DEFAULT_COMPONENTS) + 1
        reseeded = dataclasses.replace(MICRO, seed=MICRO.seed + 1)
        assert run_id(reseeded, None) != run_id(MICRO, None)

    def test_stable_across_processes(self):
        """Same IDs under a different PYTHONHASHSEED in a fresh
        interpreter — the property that makes them diffable across PRs
        and CI hosts."""
        code = textwrap.dedent(
            """
            from repro.ablation import SMOKE_WORKLOAD, default_registry, run_id
            comps = default_registry()
            print(run_id(SMOKE_WORKLOAD, None))
            print(run_id(SMOKE_WORKLOAD, comps[0]))
            """
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"
        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        out = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True, check=True,
        ).stdout.split()
        assert out == [
            run_id(SMOKE_WORKLOAD, None),
            run_id(SMOKE_WORKLOAD, default_registry()[0]),
        ]

    def test_enumerate_is_baseline_plus_one_per_component(self):
        plans = enumerate_runs(MICRO)
        assert len(plans) == len(DEFAULT_COMPONENTS) + 1
        assert plans[0].component is None
        names = [p.component.name for p in plans[1:]]
        assert names == sorted(names)
        # Registry order must not leak into the enumeration.
        shuffled = tuple(reversed(DEFAULT_COMPONENTS))
        assert enumerate_runs(MICRO, shuffled) == plans


class TestScoring:
    def test_positive_importance_for_regressing_ablation(self):
        baseline = make_run("b", None, search=make_search(sim_s=1.0))
        worse = make_run(
            "w", "tier", search=make_search(sim_s=1.5, verified_rate=0.2),
        )
        study = StudyResult(workload=MICRO, runs=[baseline, worse])
        (score,) = score_study(study)
        assert score.search_sim_delta == pytest.approx(0.5)
        assert score.verified_rate_delta == pytest.approx(0.1)
        assert score.importance > 0

    def test_ranking_is_deterministic_with_name_tiebreak(self):
        baseline = make_run("b", None)
        tied_a = make_run("a", "alpha", serving=make_serving(sim_s=1.2))
        tied_b = make_run("z", "beta", serving=make_serving(sim_s=1.2))
        big = make_run("c", "gamma", serving=make_serving(sim_s=2.0))
        study = StudyResult(
            workload=MICRO, runs=[baseline, tied_b, big, tied_a],
        )
        names = [s.component for s in score_study(study)]
        assert names == ["gamma", "alpha", "beta"]
        study.runs = [baseline, tied_a, tied_b, big]  # input order flipped
        assert [s.component for s in score_study(study)] == names

    def test_cross_backend_sim_delta_is_excluded(self):
        """NativeBackend keeps no cost ledger; its sim 'delta' would be
        a meaningless -100% and must not poison the ranking."""
        baseline = make_run("b", None)
        native = make_run(
            "n", "simulated-backend", layer="backend",
            serving=make_serving(sim_s=0.0, backend="native"),
        )
        study = StudyResult(workload=MICRO, runs=[baseline, native])
        (score,) = score_study(study)
        assert score.serving_sim_delta is None
        assert score.importance == pytest.approx(0.0)

    def test_report_and_payload_shapes(self):
        baseline = make_run("b", None, search=make_search())
        off = make_run("o", "cascade", search=make_search(sim_s=1.4))
        study = StudyResult(workload=MICRO, runs=[baseline, off])
        report = render_report(study)
        assert "cascade" in report and "importance" in report
        payload = bench_payload(study, smoke=True, cpu_count=1)
        assert payload["benchmark"] == "ablation"
        assert payload["baseline_run_id"] == "b"
        assert payload["host"]["wall_speedup_meaningful"] is False
        assert len(payload["runs"]) == 2
        assert [r["component"] for r in payload["ranking"]] == ["cascade"]
        json.dumps(payload)  # must be JSON-serialisable as-is


class TestExactnessContract:
    def test_oracle_divergence_always_fails(self):
        baseline = make_run("b", None, search=make_search())
        lossy = make_run(
            "l", "cascade", claims_exact=False,  # declaring it buys nothing
            search=make_search(reference_exact=False),
        )
        with pytest.raises(AblationExactnessError, match="oracle"):
            check_exactness(baseline, lossy)

    def test_declared_exact_with_diverged_digest_fails(self):
        baseline = make_run("b", None)
        impostor = make_run(
            "i", "breaker", claims_exact=True,
            serving=make_serving(digest="DIFFERENT"),
        )
        with pytest.raises(AblationExactnessError, match="declared exact"):
            check_exactness(baseline, impostor)

    def test_declared_inexact_may_change_answers(self):
        baseline = make_run("b", None)
        honest = make_run(
            "h", "ensemble", claims_exact=False,
            serving=make_serving(digest="DIFFERENT"),
        )
        check_exactness(baseline, honest)  # no raise


@pytest.mark.slow
class TestStudyEndToEnd:
    #: Two components exercise both phases: one exact search knob, one
    #: declared-inexact predict knob.
    COMPONENTS = tuple(
        c for c in DEFAULT_COMPONENTS if c.name in ("cascade", "ensemble")
    )

    def test_micro_study_runs_and_reuses(self):
        study = run_study(MICRO, components=self.COMPONENTS)
        assert [r.component for r in study.runs] == [
            None, "cascade", "ensemble",
        ]
        assert study.baseline.search["reference_exact"] is True
        by_name = {r.component: r for r in study.runs}
        assert (
            by_name["cascade"].serving["forecast_digest"]
            == study.baseline.serving["forecast_digest"]
        )
        # Resumed study: stored component rows are reused verbatim,
        # the baseline is always fresh.
        reuse = {
            r.run_id: r.as_dict() for r in study.runs
            if r.component is not None
        }
        resumed = run_study(MICRO, components=self.COMPONENTS, reuse=reuse)
        assert [r.run_id for r in resumed.runs] == [
            r.run_id for r in study.runs
        ]
        assert not resumed.baseline.reused
        assert all(r.reused for r in resumed.runs[1:])

    def test_lying_component_fails_the_study(self):
        """An ablation that changes forecasts while claiming exactness
        must abort the run, not become a data point."""
        liar = Component(
            name="lying-ensemble", layer="predict",
            description="changes answers but claims it does not",
            patch=(("smiler.ensemble", False),),
            claims_exact=True,
        )
        with pytest.raises(AblationExactnessError, match="lying-ensemble"):
            run_study(MICRO, components=(liar,))
