"""Tests for the full Suffix kNN Search pipeline (filter/verify/select)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtw import dtw_batch
from repro.gpu import GpuDevice
from repro.index import SuffixKnnEngine, SuffixSearchConfig


def make_series(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.sin(np.arange(n) / 8.0) + 0.2 * rng.normal(size=n)


def bruteforce_answer(series, master, d, k, rho, margin):
    """Ground truth: banded DTW on every valid candidate."""
    query = master[master.size - d :]
    last_valid = series.size - d - margin
    starts = np.arange(last_valid + 1)
    segments = np.stack([series[t : t + d] for t in starts])
    distances = dtw_batch(query, segments, rho)
    order = np.argsort(distances, kind="stable")[: min(k, starts.size)]
    return starts[order], distances[order]


SMALL_CFG = SuffixSearchConfig(
    item_lengths=(8, 16, 24), k_max=6, omega=4, rho=2, margin=2
)


class TestConfig:
    def test_defaults_match_paper_table_2(self):
        cfg = SuffixSearchConfig()
        assert cfg.item_lengths == (32, 64, 96)
        assert cfg.omega == 16
        assert cfg.rho == 8
        assert cfg.master_length == 96

    def test_validation(self):
        with pytest.raises(ValueError):
            SuffixSearchConfig(k_max=0)
        with pytest.raises(ValueError):
            SuffixSearchConfig(margin=0)
        with pytest.raises(ValueError):
            SuffixSearchConfig(lb_mode="bogus")


class TestExactness:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_initial_search_matches_bruteforce(self, seed):
        series = make_series(180, seed=seed)
        engine = SuffixKnnEngine(series, SMALL_CFG)
        answers = engine.search()
        for d, answer in answers.items():
            exp_starts, exp_dist = bruteforce_answer(
                series, engine.master_query, d, SMALL_CFG.k_max,
                SMALL_CFG.rho, SMALL_CFG.margin,
            )
            np.testing.assert_allclose(
                np.sort(answer.distances), np.sort(exp_dist), atol=1e-9
            )

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 100), n_steps=st.integers(1, 8))
    def test_continuous_search_stays_exact(self, seed, n_steps):
        """Threshold reuse across steps must not lose true neighbours."""
        series = make_series(160, seed=seed)
        future = make_series(n_steps, seed=seed + 1000)
        engine = SuffixKnnEngine(series, SMALL_CFG)
        engine.search()
        current = series.copy()
        for p in future:
            answers = engine.step(p)
            current = np.append(current, p)
        master = current[-SMALL_CFG.master_length :]
        for d, answer in answers.items():
            _, exp_dist = bruteforce_answer(
                current, master, d, SMALL_CFG.k_max,
                SMALL_CFG.rho, SMALL_CFG.margin,
            )
            np.testing.assert_allclose(
                np.sort(answer.distances), np.sort(exp_dist), atol=1e-9
            )

    def test_search_without_threshold_reuse_also_exact(self):
        cfg = SuffixSearchConfig(
            item_lengths=(8, 16), k_max=4, omega=4, rho=2, margin=1,
            reuse_threshold=False,
        )
        series = make_series(140, seed=9)
        engine = SuffixKnnEngine(series, cfg)
        engine.search()
        answers = engine.step(0.3)
        current = np.append(series, 0.3)
        for d, answer in answers.items():
            _, exp_dist = bruteforce_answer(
                current, current[-16:], d, 4, 2, 1
            )
            np.testing.assert_allclose(
                np.sort(answer.distances), np.sort(exp_dist), atol=1e-9
            )


class TestPipelineBehaviour:
    def test_filtering_reduces_candidates(self):
        """After threshold warm-up, most candidates are filtered."""
        from repro.timeseries import road_like

        raw = road_like(1, 3010, seed=2)[0]
        raw = (raw - raw.mean()) / raw.std()
        series, future = raw[:3000], raw[3000:]
        cfg = SuffixSearchConfig(
            item_lengths=(32, 64, 96), k_max=8, omega=16, rho=8, margin=1
        )
        engine = SuffixKnnEngine(series, cfg)
        engine.search()
        for p in future:
            answers = engine.step(p)
        for answer in answers.values():
            assert answer.candidates_unfiltered < answer.candidates_total / 2

    def test_lb_en_filters_at_least_as_well_as_one_sided(self):
        """Table 3's headline: LB_en leaves fewer unfiltered candidates.

        Runs the single-tier baseline (``cascade=False``) so the
        comparison isolates the LB_w filter: the cascade's mode-agnostic
        tiers (LB_Kim, LB_Improved) prune against each mode's own
        threshold, which can reorder raw survivor counts between modes.
        """
        series = make_series(2500, seed=3)
        unfiltered = {}
        for mode in ("en", "eq", "ec"):
            cfg = SuffixSearchConfig(
                item_lengths=(32, 64, 96), k_max=8, omega=16, rho=8,
                margin=1, lb_mode=mode, cascade=False,
            )
            engine = SuffixKnnEngine(series, cfg)
            answers = engine.search()
            unfiltered[mode] = sum(
                a.candidates_unfiltered for a in answers.values()
            )
        assert unfiltered["en"] <= unfiltered["eq"]
        assert unfiltered["en"] <= unfiltered["ec"]

    def test_item_query_is_suffix(self):
        series = make_series(200)
        engine = SuffixKnnEngine(series, SMALL_CFG)
        np.testing.assert_array_equal(
            engine.item_query(8), engine.master_query[-8:]
        )

    def test_answers_sorted_by_distance(self):
        series = make_series(250, seed=4)
        engine = SuffixKnnEngine(series, SMALL_CFG)
        for answer in engine.search().values():
            assert (np.diff(answer.distances) >= 0).all()

    def test_top_subsets(self):
        series = make_series(250, seed=5)
        engine = SuffixKnnEngine(series, SMALL_CFG)
        answer = engine.search()[16]
        starts, dists = answer.top(3)
        assert starts.size == 3
        np.testing.assert_array_equal(starts, answer.starts[:3])

    def test_margin_respected(self):
        series = make_series(220, seed=6)
        engine = SuffixKnnEngine(series, SMALL_CFG)
        for d, answer in engine.search().items():
            assert (answer.starts + d - 1 + SMALL_CFG.margin <= series.size - 1).all()

    def test_series_too_short_raises(self):
        cfg = SuffixSearchConfig(item_lengths=(8, 16), k_max=2, omega=4, rho=2, margin=10)
        with pytest.raises(ValueError):
            SuffixKnnEngine(make_series(20), cfg).search()

    def test_custom_master_query(self):
        series = make_series(200, seed=7)
        master = make_series(24, seed=8)
        engine = SuffixKnnEngine(series, SMALL_CFG, master_query=master)
        np.testing.assert_array_equal(engine.master_query, master)
        engine.search()  # must not raise


class TestExactnessUnderAnomalies:
    """Dirty data must not break exactness — bounds are data-agnostic."""

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 100),
        magnitude=st.floats(5.0, 1e4),
    )
    def test_spiked_series_stays_exact(self, seed, magnitude):
        from repro.timeseries import inject_spike

        base = make_series(150, seed=seed)
        injected = inject_spike(base, start=60, magnitude=magnitude, length=3)
        series = injected.values
        engine = SuffixKnnEngine(series, SMALL_CFG)
        answers = engine.search()
        for d, answer in answers.items():
            _, exp_dist = bruteforce_answer(
                series, engine.master_query, d, SMALL_CFG.k_max,
                SMALL_CFG.rho, SMALL_CFG.margin,
            )
            np.testing.assert_allclose(
                np.sort(answer.distances), np.sort(exp_dist),
                rtol=1e-9, atol=1e-9,
            )

    def test_dropout_series_stays_exact(self):
        from repro.timeseries import inject_dropout

        base = make_series(160, seed=11)
        series = inject_dropout(base, start=40, length=30).values
        engine = SuffixKnnEngine(series, SMALL_CFG)
        answers = engine.step(0.25)
        current = np.append(series, 0.25)
        for d, answer in answers.items():
            _, exp_dist = bruteforce_answer(
                current, current[-SMALL_CFG.master_length:], d,
                SMALL_CFG.k_max, SMALL_CFG.rho, SMALL_CFG.margin,
            )
            np.testing.assert_allclose(
                np.sort(answer.distances), np.sort(exp_dist), atol=1e-9
            )
