"""Unit tests for span tracing (repro.obs.tracing) and the global hooks."""

import threading
import tracemalloc

import pytest

from repro import obs
from repro.gpu.device import GpuDevice
from repro.obs.tracing import Tracer, format_span_tree


@pytest.fixture
def tracer():
    return Tracer()


@pytest.fixture(autouse=True)
def _clean_global_obs():
    """Keep the process-wide switch off and state clean around each test."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSpanNesting:
    def test_children_attach_to_open_parent(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert root.children[0].children[0].name == "grandchild"

    def test_durations_non_negative_and_parent_covers_children(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child"):
                sum(range(1000))
        assert root.wall_s >= 0.0
        assert root.children[0].wall_s >= 0.0
        assert root.wall_s >= root.children[0].wall_s

    def test_last_root_set_on_completion(self, tracer):
        assert tracer.last_root is None
        with tracer.span("first"):
            assert tracer.last_root is None  # still open
        assert tracer.last_root.name == "first"
        with tracer.span("second"):
            pass
        assert tracer.last_root.name == "second"

    def test_exception_unwinds_stack(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("child"):
                    raise RuntimeError("boom")
        assert tracer.current() is None
        assert tracer.last_root.name == "root"

    def test_find_and_find_all(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("leaf"):
                pass
            with tracer.span("branch"):
                with tracer.span("leaf"):
                    pass
        assert root.find("leaf") is root.children[0]
        assert len(root.find_all("leaf")) == 2
        assert root.find("absent") is None

    def test_threads_have_independent_stacks(self, tracer):
        seen = {}

        def work(name):
            with tracer.span(name) as sp:
                seen[name] = sp

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # No cross-thread nesting: every span is a root with no children.
        assert all(not sp.children for sp in seen.values())


class TestGpuAttribution:
    def test_span_records_simulated_device_time(self, tracer):
        device = GpuDevice()
        with tracer.span("kernelwork", device=device) as sp:
            device.launch("fake_kernel", n_blocks=4, ops_per_thread=1000)
        assert sp.gpu_sim_s > 0.0
        assert sp.gpu_sim_s == pytest.approx(device.elapsed_s)

    def test_span_without_device_reports_zero_gpu(self, tracer):
        with tracer.span("cpuwork") as sp:
            pass
        assert sp.gpu_sim_s == 0.0


class TestRendering:
    def test_format_tree_contains_names_and_attrs(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                child.attrs["item_length"] = 32
        text = format_span_tree(root)
        assert "root" in text
        assert "child" in text
        assert "item_length=32" in text

    def test_as_dict_round_trips_structure(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        record = root.as_dict()
        assert record["name"] == "root"
        assert record["children"][0]["name"] == "child"
        assert record["wall_s"] >= 0.0


class TestGlobalSwitch:
    def test_disabled_span_is_shared_noop(self):
        a = obs.span("anything")
        b = obs.span("something_else")
        assert a is b  # the shared singleton — no per-call allocation
        with a as inner:
            assert inner is None
        assert obs.get_tracer().last_root is None

    def test_enabled_span_traces(self):
        obs.enable()
        with obs.span("root") as sp:
            assert sp is not None
        assert obs.get_tracer().last_root is sp

    def test_disabled_span_allocates_nothing(self):
        device = GpuDevice()
        obs.span("warmup", device)  # warm caches before measuring
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(100):
            with obs.span("hot_path", device):
                pass
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        grown = [
            s for s in after.compare_to(before, "lineno")
            if s.size_diff > 0 and "tracemalloc" not in str(s.traceback)
        ]
        assert sum(s.size_diff for s in grown) < 512, grown

    def test_disabled_hooks_allocate_nothing(self):
        obs.observe_kernel_launch("warmup", 0.0, 1, 1.0)
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(100):
            obs.observe_kernel_launch("k", 1e-6, 4, 1000.0)
            obs.observe_search(32, 100, 10)
            obs.observe_window_reuse(rows_reused=5)
            obs.observe_forecast("s", 1, 1e-3)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        grown = [
            s for s in after.compare_to(before, "lineno")
            if s.size_diff > 0 and "tracemalloc" not in str(s.traceback)
        ]
        assert sum(s.size_diff for s in grown) < 512, grown
