"""Tests for stream quality screening."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries import QualityReport, assess_quality, longest_constant_run


class TestConstantRun:
    def test_empty(self):
        assert longest_constant_run(np.array([])) == 0

    def test_all_constant(self):
        assert longest_constant_run(np.full(7, 2.0)) == 7

    def test_interior_run(self):
        assert longest_constant_run(np.array([1, 2, 2, 2, 3, 3])) == 3

    def test_no_repeats(self):
        assert longest_constant_run(np.arange(5)) == 1

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=40))
    def test_matches_naive(self, values):
        arr = np.asarray(values)
        best = cur = 1
        for i in range(1, arr.size):
            cur = cur + 1 if arr[i] == arr[i - 1] else 1
            best = max(best, cur)
        assert longest_constant_run(arr) == best


class TestAssessQuality:
    def test_clean_stream_ok(self):
        rng = np.random.default_rng(0)
        report = assess_quality(rng.normal(size=1000))
        assert report.ok
        assert report.missing_fraction == 0.0
        assert "none" in report.render()

    def test_missing_flagged(self):
        values = np.ones(100)
        values[:20] = np.nan
        report = assess_quality(values)
        assert not report.ok
        assert any("missing" in issue for issue in report.issues)

    def test_stuck_run_flagged(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=1000)
        values[100:500] = 3.14
        report = assess_quality(values, max_stuck_run=100)
        assert any("stuck" in issue for issue in report.issues)

    def test_outliers_flagged(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=1000)
        values[::50] = 1e6
        report = assess_quality(values)
        assert any("outlier" in issue for issue in report.issues)

    def test_constant_stream_flagged(self):
        report = assess_quality(np.full(100, 9.0))
        assert any("constant" in issue for issue in report.issues)

    def test_all_missing(self):
        report = assess_quality(np.full(10, np.nan))
        assert not report.ok
        assert report.missing_fraction == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            assess_quality(np.array([]))
