"""Tests for exact GP regression (Eqns. 28-31)."""

import numpy as np
import pytest

from repro.gp import GaussianProcessRegressor, SquaredExponentialKernel, robust_cholesky


def toy_problem(n=30, seed=0, noise=0.05):
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(-3, 3, size=n))[:, None]
    y = np.sin(x[:, 0]) + noise * rng.normal(size=n)
    return x, y


class TestRobustCholesky:
    def test_plain_spd(self):
        mat = np.array([[4.0, 1.0], [1.0, 3.0]])
        lower, jitter = robust_cholesky(mat)
        np.testing.assert_allclose(lower @ lower.T, mat)
        assert jitter == 0.0

    def test_rank_deficient_gets_jitter(self):
        mat = np.ones((5, 5))  # rank 1
        lower, jitter = robust_cholesky(mat)
        assert jitter > 0
        assert np.isfinite(lower).all()

    def test_hopeless_matrix_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            robust_cholesky(np.array([[-1e6, 0.0], [0.0, -1e6]]))


class TestFitPredict:
    def test_interpolates_clean_data(self):
        x, y = toy_problem(noise=0.0)
        gp = GaussianProcessRegressor(
            SquaredExponentialKernel(1.0, 1.0, 1e-3)
        ).fit(x, y)
        mean, _ = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-2)

    def test_predictive_variance_grows_away_from_data(self):
        x, y = toy_problem()
        gp = GaussianProcessRegressor(
            SquaredExponentialKernel(1.0, 1.0, 0.05)
        ).fit(x, y)
        _, var_near = gp.predict(np.array([[0.0]]))
        _, var_far = gp.predict(np.array([[30.0]]))
        assert var_far > var_near
        # Far from data the variance reverts to the prior.
        assert var_far[0] == pytest.approx(1.0 + 0.05**2, rel=1e-3)

    def test_include_noise_flag(self):
        x, y = toy_problem()
        kernel = SquaredExponentialKernel(1.0, 1.0, 0.3)
        gp = GaussianProcessRegressor(kernel).fit(x, y)
        _, noisy = gp.predict(np.array([[0.5]]), include_noise=True)
        _, clean = gp.predict(np.array([[0.5]]), include_noise=False)
        assert noisy[0] == pytest.approx(clean[0] + 0.09, abs=1e-9)

    def test_mean_reverts_to_zero_prior(self):
        x, y = toy_problem()
        gp = GaussianProcessRegressor().fit(x, y)
        mean, _ = gp.predict(np.array([[100.0]]))
        assert abs(mean[0]) < 1e-6

    def test_shape_validation(self):
        gp = GaussianProcessRegressor()
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.zeros((1, 2)))

    def test_duplicate_inputs_do_not_crash(self):
        x = np.zeros((10, 3))
        y = np.random.default_rng(0).normal(size=10)
        gp = GaussianProcessRegressor().fit(x, y)
        mean, var = gp.predict(np.zeros((1, 3)))
        assert np.isfinite(mean).all() and np.isfinite(var).all()

    def test_posterior_matches_direct_formula(self):
        """Eqns. 30/31 computed naively must agree with the Cholesky path."""
        x, y = toy_problem(n=12, seed=3)
        kernel = SquaredExponentialKernel(1.3, 0.8, 0.2)
        gp = GaussianProcessRegressor(kernel).fit(x, y)
        x_star = np.array([[0.3], [-1.7]])
        cov = kernel.matrix(x, noise=True)
        cross = kernel.matrix(x, x_star)
        kinv = np.linalg.inv(cov)
        expected_mean = cross.T @ kinv @ y
        expected_var = (
            kernel.diag(x_star, noise=True)
            - np.sum(cross * (kinv @ cross), axis=0)
        )
        mean, var = gp.predict(x_star)
        np.testing.assert_allclose(mean, expected_mean, rtol=1e-8)
        np.testing.assert_allclose(var, expected_var, rtol=1e-6)


class TestMarginalLikelihood:
    def test_matches_naive_formula(self):
        x, y = toy_problem(n=15, seed=4)
        kernel = SquaredExponentialKernel(1.0, 1.2, 0.15)
        gp = GaussianProcessRegressor(kernel).fit(x, y)
        cov = kernel.matrix(x, noise=True)
        sign, logdet = np.linalg.slogdet(cov)
        expected = -0.5 * (
            y @ np.linalg.solve(cov, y) + logdet + y.size * np.log(2 * np.pi)
        )
        assert gp.log_marginal_likelihood() == pytest.approx(expected, rel=1e-9)

    def test_good_hyperparameters_beat_bad_ones(self):
        x, y = toy_problem(n=40, seed=5)
        good = GaussianProcessRegressor(
            SquaredExponentialKernel(1.0, 1.0, 0.05)
        ).fit(x, y)
        bad = GaussianProcessRegressor(
            SquaredExponentialKernel(1.0, 1e-2, 1.0)
        ).fit(x, y)
        assert good.log_marginal_likelihood() > bad.log_marginal_likelihood()

    def test_kinv(self):
        x, y = toy_problem(n=8)
        kernel = SquaredExponentialKernel()
        gp = GaussianProcessRegressor(kernel).fit(x, y)
        expected = np.linalg.inv(kernel.matrix(x, noise=True))
        np.testing.assert_allclose(gp.kinv(), expected, atol=1e-8)


class TestPosteriorSampling:
    def test_sample_shapes(self):
        x, y = toy_problem(n=20)
        gp = GaussianProcessRegressor().fit(x, y)
        x_star = np.linspace(-2, 2, 9)[:, None]
        samples = gp.sample_functions(x_star, n_samples=5, seed=0)
        assert samples.shape == (5, 9)

    def test_samples_concentrate_near_posterior_mean(self):
        x, y = toy_problem(n=40, seed=7)
        gp = GaussianProcessRegressor(
            SquaredExponentialKernel(1.0, 1.0, 0.05)
        ).fit(x, y)
        x_star = np.array([[0.0], [1.0]])
        samples = gp.sample_functions(x_star, n_samples=4000, seed=1)
        mean, var = gp.predict(x_star, include_noise=False)
        np.testing.assert_allclose(samples.mean(axis=0), mean, atol=0.05)
        np.testing.assert_allclose(samples.var(axis=0), var, atol=0.05)

    def test_samples_are_smooth_draws(self):
        """Joint draws respect the kernel's correlation (not iid noise)."""
        x, y = toy_problem(n=30, seed=8)
        gp = GaussianProcessRegressor(
            SquaredExponentialKernel(1.0, 2.0, 0.05)
        ).fit(x, y)
        grid = np.linspace(5.0, 6.0, 20)[:, None]  # off-data region
        samples = gp.sample_functions(grid, n_samples=50, seed=2)
        steps = np.abs(np.diff(samples, axis=1))
        # Adjacent points 0.05 apart under length-scale 2 are tightly
        # correlated: the increments are far smaller than the marginal std.
        assert steps.mean() < 0.2

    def test_validation(self):
        x, y = toy_problem(n=10)
        gp = GaussianProcessRegressor().fit(x, y)
        with pytest.raises(ValueError):
            gp.sample_functions(np.zeros((2, 1)), n_samples=0)
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().sample_functions(np.zeros((2, 1)))
