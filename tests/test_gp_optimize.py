"""Tests for the CG and Nelder-Mead optimisers."""

import numpy as np
import pytest

from repro.gp import conjugate_gradient_minimize, nelder_mead_minimize


def quadratic(center, scales):
    center = np.asarray(center, dtype=np.float64)
    scales = np.asarray(scales, dtype=np.float64)

    def fun(x):
        diff = x - center
        value = float(np.sum(scales * diff**2))
        grad = 2.0 * scales * diff
        return value, grad

    return fun


def rosenbrock(x):
    a, b = 1.0, 100.0
    value = (a - x[0]) ** 2 + b * (x[1] - x[0] ** 2) ** 2
    grad = np.array(
        [
            -2 * (a - x[0]) - 4 * b * x[0] * (x[1] - x[0] ** 2),
            2 * b * (x[1] - x[0] ** 2),
        ]
    )
    return float(value), grad


class TestConjugateGradient:
    def test_quadratic_exact(self):
        fun = quadratic([3.0, -2.0, 1.0], [1.0, 5.0, 0.5])
        result = conjugate_gradient_minimize(fun, np.zeros(3), max_iters=200)
        np.testing.assert_allclose(result.x, [3.0, -2.0, 1.0], atol=1e-4)
        assert result.converged

    def test_rosenbrock_progress(self):
        result = conjugate_gradient_minimize(
            rosenbrock, np.array([-1.2, 1.0]), max_iters=2000, grad_tol=1e-8
        )
        assert result.value < 1e-5

    def test_fixed_step_budget_respected(self):
        """The paper's online training runs exactly 5 CG steps."""
        fun = quadratic(np.full(4, 10.0), np.ones(4))
        result = conjugate_gradient_minimize(fun, np.zeros(4), max_iters=5)
        assert result.iterations <= 5

    def test_monotone_decrease(self):
        values = []

        def tracked(x):
            v, g = rosenbrock(x)
            values.append(v)
            return v, g

        conjugate_gradient_minimize(tracked, np.array([0.5, 0.5]), max_iters=50)
        accepted = [values[0]]
        for v in values[1:]:
            if v <= accepted[-1]:
                accepted.append(v)
        assert accepted[-1] < accepted[0]

    def test_already_at_optimum(self):
        fun = quadratic([0.0, 0.0], [1.0, 1.0])
        result = conjugate_gradient_minimize(fun, np.zeros(2))
        assert result.converged
        assert result.value == pytest.approx(0.0, abs=1e-12)

    def test_non_finite_start_rejected(self):
        def bad(x):
            return np.inf, np.zeros_like(x)

        with pytest.raises(ValueError):
            conjugate_gradient_minimize(bad, np.zeros(2))


class TestNelderMead:
    def test_quadratic(self):
        result = nelder_mead_minimize(
            lambda x: float(np.sum((x - 2.0) ** 2)), np.zeros(3), max_iters=500
        )
        np.testing.assert_allclose(result.x, 2.0, atol=1e-3)

    def test_rosenbrock_2d(self):
        result = nelder_mead_minimize(
            lambda x: rosenbrock(x)[0], np.array([-1.0, 1.5]), max_iters=2000
        )
        np.testing.assert_allclose(result.x, [1.0, 1.0], atol=1e-2)

    def test_handles_inf_regions(self):
        def guarded(x):
            if x[0] < 0:
                return np.inf
            return float((x[0] - 1.0) ** 2 + x[1] ** 2)

        result = nelder_mead_minimize(guarded, np.array([2.0, 2.0]), max_iters=500)
        assert result.value < 1e-4

    def test_iteration_budget(self):
        calls = {"n": 0}

        def counting(x):
            calls["n"] += 1
            return float(np.sum(x**2))

        nelder_mead_minimize(counting, np.ones(2), max_iters=10)
        # Each NM iteration evaluates a handful of vertices at most.
        assert calls["n"] < 10 * 6 + 10
