"""Tests for banded DTW implementations (reference, Algorithm 2, batch)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dtw import (
    dtw_batch,
    dtw_distance,
    dtw_distance_compressed,
    dtw_distance_early_abandon,
)

floats = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)


def seq(length):
    return arrays(np.float64, (length,), elements=floats)


def dtw_reference_full_matrix(query, candidate, rho):
    """Straight transcription of Eqns. (21)-(24) — O(d^2) memory."""
    d = len(query)
    gamma = np.full((d + 1, d + 1), np.inf)
    gamma[0, 0] = 0.0
    for i in range(1, d + 1):
        for j in range(1, d + 1):
            if abs(i - j) > rho:
                continue
            cost = (query[i - 1] - candidate[j - 1]) ** 2
            gamma[i, j] = cost + min(
                gamma[i - 1, j], gamma[i, j - 1], gamma[i - 1, j - 1]
            )
    return gamma[d, d]


class TestDtwBasics:
    def test_identical_sequences_distance_zero(self):
        x = np.array([1.0, 2.0, 3.0, 2.0])
        assert dtw_distance(x, x, rho=1) == 0.0

    def test_known_value_euclidean_when_band_zero(self):
        q = np.array([0.0, 1.0, 2.0])
        c = np.array([1.0, 1.0, 1.0])
        # rho = 0 degenerates to pointwise squared Euclidean distance.
        assert dtw_distance(q, c, rho=0) == pytest.approx(1.0 + 0.0 + 1.0)

    def test_warping_helps(self):
        q = np.array([0.0, 0.0, 1.0, 0.0, 0.0])
        c = np.array([0.0, 1.0, 0.0, 0.0, 0.0])
        banded = dtw_distance(q, c, rho=1)
        rigid = dtw_distance(q, c, rho=0)
        assert banded < rigid
        assert banded == 0.0

    def test_band_monotonicity(self):
        rng = np.random.default_rng(0)
        q, c = rng.normal(size=20), rng.normal(size=20)
        distances = [dtw_distance(q, c, rho=r) for r in (0, 1, 2, 4, 8, None)]
        assert all(a >= b - 1e-12 for a, b in zip(distances, distances[1:]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dtw_distance(np.arange(3.0), np.arange(4.0))

    def test_empty(self):
        with pytest.raises(ValueError):
            dtw_distance(np.array([]), np.array([]))

    def test_negative_rho(self):
        with pytest.raises(ValueError):
            dtw_distance(np.arange(3.0), np.arange(3.0), rho=-1)


class TestCrossImplementationAgreement:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), length=st.integers(2, 24), rho=st.integers(0, 8))
    def test_compressed_matches_reference(self, data, length, rho):
        q = data.draw(seq(length))
        c = data.draw(seq(length))
        ref = dtw_distance(q, c, rho=rho)
        compressed = dtw_distance_compressed(q, c, rho=rho)
        assert compressed == pytest.approx(ref, rel=1e-12, abs=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data(), length=st.integers(2, 16), rho=st.integers(0, 5))
    def test_reference_matches_full_matrix(self, data, length, rho):
        q = data.draw(seq(length))
        c = data.draw(seq(length))
        ref = dtw_distance(q, c, rho=rho)
        naive = dtw_reference_full_matrix(q, c, rho)
        assert ref == pytest.approx(naive, rel=1e-12, abs=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data(), length=st.integers(2, 16), n=st.integers(1, 6))
    def test_batch_matches_scalar(self, data, length, n):
        q = data.draw(seq(length))
        cands = np.stack([data.draw(seq(length)) for _ in range(n)])
        batch = dtw_batch(q, cands, rho=3)
        scalar = [dtw_distance(q, c, rho=3) for c in cands]
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=1e-12)

    def test_batch_unbanded(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=12)
        cands = rng.normal(size=(5, 12))
        np.testing.assert_allclose(
            dtw_batch(q, cands, rho=None),
            [dtw_distance(q, c, rho=None) for c in cands],
        )

    def test_batch_empty(self):
        assert dtw_batch(np.arange(3.0), np.empty((0, 3))).size == 0

    def test_batch_shape_mismatch(self):
        with pytest.raises(ValueError):
            dtw_batch(np.arange(3.0), np.empty((2, 4)))


class TestEarlyAbandon:
    def test_matches_reference_when_not_abandoned(self):
        rng = np.random.default_rng(2)
        q, c = rng.normal(size=30), rng.normal(size=30)
        full = dtw_distance(q, c, rho=4)
        assert dtw_distance_early_abandon(q, c, rho=4, best_so_far=np.inf) == (
            pytest.approx(full)
        )

    def test_abandons_when_bound_exceeded(self):
        q = np.zeros(20)
        c = np.full(20, 10.0)
        assert dtw_distance_early_abandon(q, c, rho=4, best_so_far=1.0) == np.inf

    def test_never_underestimates(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            q, c = rng.normal(size=15), rng.normal(size=15)
            full = dtw_distance(q, c, rho=3)
            got = dtw_distance_early_abandon(q, c, rho=3, best_so_far=full * 0.5)
            assert got == np.inf or got == pytest.approx(full)
