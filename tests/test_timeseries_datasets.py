"""Tests for synthetic dataset generators and the registry."""

import numpy as np
import pytest

from repro.timeseries import make_dataset, mall_like, net_like, road_like
from repro.timeseries.generators import POINTS_PER_DAY


class TestGenerators:
    @pytest.mark.parametrize("gen", [road_like, mall_like, net_like])
    def test_shapes(self, gen):
        sensors = gen(3, 500, seed=42)
        assert len(sensors) == 3
        assert all(s.size == 500 for s in sensors)
        assert all(np.isfinite(s).all() for s in sensors)

    @pytest.mark.parametrize("gen", [road_like, mall_like, net_like])
    def test_deterministic(self, gen):
        a = gen(2, 300, seed=7)
        b = gen(2, 300, seed=7)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_road_in_unit_interval(self):
        for s in road_like(2, 1000, seed=1):
            assert s.min() >= 0.0 and s.max() <= 1.0

    def test_mall_non_negative_integers(self):
        for s in mall_like(2, 1000, seed=1):
            assert s.min() >= 0.0
            np.testing.assert_array_equal(s, np.round(s))

    def test_net_positive(self):
        for s in net_like(2, 1000, seed=1):
            assert (s > 0).all()

    def test_daily_seasonality_dominates_mall(self):
        """MALL should autocorrelate strongly at one-day lag."""
        s = mall_like(1, 20 * POINTS_PER_DAY, seed=3)[0]
        s = (s - s.mean()) / s.std()
        lag = POINTS_PER_DAY
        corr = float(np.mean(s[:-lag] * s[lag:]))
        assert corr > 0.8


class TestDatasetRegistry:
    def test_make_dataset_road(self):
        ds = make_dataset("ROAD", n_sensors=2, n_points=800, test_points=100)
        assert ds.name == "ROAD"
        assert ds.n_sensors == 2
        history, tail = ds.sensor(0)
        assert len(history) == 700
        assert tail.size == 100

    def test_case_insensitive(self):
        assert make_dataset("net", 1, 400, 50).name == "NET"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_dataset("NOPE", 1, 400, 50)

    def test_test_points_validation(self):
        with pytest.raises(ValueError):
            make_dataset("ROAD", 1, 100, 100)

    def test_normalisation_applied(self):
        ds = make_dataset("MALL", n_sensors=1, n_points=2000, test_points=200)
        full = np.concatenate([ds.history[0].values, ds.test_tails[0]])
        assert abs(float(full.mean())) < 1e-6
        assert abs(float(full.std()) - 1.0) < 1e-6

    def test_total_points(self):
        ds = make_dataset("NET", n_sensors=3, n_points=500, test_points=50)
        assert ds.total_points() == 3 * 500

    def test_datasets_differ(self):
        road = make_dataset("ROAD", 1, 500, 50, seed=0)
        net = make_dataset("NET", 1, 500, 50, seed=0)
        assert not np.allclose(road.history[0].values, net.history[0].values)
