"""Integration tests: every table/figure driver runs and has the right shape.

These use tiny workloads — the paper-scale shapes are exercised in
``benchmarks/``; here we verify structure, plumbing and the invariants
that must hold at any scale.
"""

import numpy as np
import pytest

from repro.harness import (
    AccuracyScale,
    SearchScale,
    index_memory_bytes,
    render_fig1,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_table3,
    run_table4,
)

SEARCH = SearchScale(n_sensors=1, n_points=1200, continuous_steps=3)
ACCURACY = AccuracyScale(
    n_sensors=1, n_points=1200, test_points=30, steps=15,
    horizons=(1, 3), datasets=("ROAD",),
)


@pytest.fixture(scope="module")
def table3():
    return run_table3(SEARCH)


@pytest.fixture(scope="module")
def fig7():
    return run_fig7(SEARCH, ks=(8, 16), scan_steps=1)


class TestTable3(object):
    def test_structure(self, table3):
        assert set(table3.data) == {"ROAD", "MALL", "NET"}
        for per_mode in table3.data.values():
            assert set(per_mode) == {"eq", "ec", "en"}

    def test_en_filters_best(self, table3):
        for dataset, per_mode in table3.data.items():
            assert per_mode["en"][1] <= per_mode["eq"][1] + 1e-9
            assert per_mode["en"][1] <= per_mode["ec"][1] + 1e-9

    def test_render(self, table3):
        out = table3.render()
        assert "Table 3" in out and "LB_en" in out


class TestFig7:
    def test_structure(self, fig7):
        assert fig7.ks == (8, 16)
        for per_method in fig7.times.values():
            assert set(per_method) == {
                "SMiLer-Idx", "SMiLer-Dir", "FastGPUScan", "GPUScan",
                "FastCPUScan",
            }
            for series in per_method.values():
                assert len(series) == 2
                assert all(t > 0 for t in series)

    def test_banded_scan_beats_unbanded(self, fig7):
        for dataset in fig7.times:
            assert fig7.speedup_over(dataset, "FastGPUScan", "GPUScan") > 1.0

    def test_index_beats_full_scans(self, fig7):
        for dataset in fig7.times:
            assert fig7.speedup_over(dataset, "SMiLer-Idx", "GPUScan") > 1.0
            assert fig7.speedup_over(dataset, "SMiLer-Idx", "FastCPUScan") > 1.0

    def test_render(self, fig7):
        assert "Fig. 7" in fig7.render()


class TestFig8:
    def test_index_faster_than_direct(self):
        result = run_fig8(SEARCH)
        for dataset, (idx, direct) in result.times.items():
            assert idx < direct, dataset
        assert "Fig. 8" in result.render()


@pytest.mark.slow
class TestAccuracyDrivers:
    def test_fig10_structure(self):
        result = run_fig10(ACCURACY)
        assert result.horizons == (1, 3)
        methods = set(result.mae_series["ROAD"])
        assert {"SMiLer-GP", "SMiLer-AR", "LazyKNN", "FullHW", "SegHW",
                "OnlineSVR", "OnlineRR"} == methods
        for series in result.mae_series["ROAD"].values():
            assert all(np.isfinite(series))
        assert "MNLPD" in result.render()

    def test_fig11_ablation_names(self):
        result = run_fig11(ACCURACY)
        methods = set(result.mae_series["ROAD"])
        assert "SMiLer-GP" in methods
        assert "SMiLer-GP (NE)" in methods
        assert "SMiLer-GP (NS)" in methods
        assert "SMiLer-AR (NE)" in methods

    def test_table4_structure(self):
        result = run_table4(ACCURACY)
        per_method = result.data["ROAD"]
        # SMiLer has no training phase.
        assert per_method["SMiLer-GP"][0] == 0.0
        assert per_method["SMiLer-AR"][0] == 0.0
        # Offline models do.
        assert per_method["PSGP"][0] > 0.0
        assert per_method["NysSVR"][0] > 0.0
        # Everyone has a positive prediction time.
        assert all(prd > 0 for _, prd in per_method.values())
        assert "Table 4" in result.render()

    def test_fig12_structure(self):
        result = run_fig12(ACCURACY, points_per_sensor=52_560)
        assert set(result.step_times["ROAD"]) == {"SMiLer-AR", "SMiLer-GP"}
        for search_s, wall_s in result.step_times["ROAD"].values():
            assert search_s > 0 and wall_s > 0
        # ~1000 one-year ROAD sensors fit a 6 GB card (Section 6.4.1).
        assert 500 <= result.capacity["ROAD"] <= 5000
        assert "Fig. 12" in result.render()

    def test_fig13_cost_grows_with_active_points(self):
        result = run_fig13(ACCURACY, active_points=(4, 32))
        times, maes = result.psgp["ROAD"]
        assert times[1] > times[0]
        assert all(np.isfinite(maes))
        assert result.smiler_mae["ROAD"] > 0
        assert "Fig. 13" in result.render()


class TestMemoryModel:
    def test_linear_in_points(self):
        small = index_memory_bytes(10_000)
        large = index_memory_bytes(20_000)
        assert large == pytest.approx(2 * small, rel=0.05)

    def test_fig1_render(self):
        out = render_fig1()
        assert "2004" in out and "2014" in out and "TFLOPS" in out


@pytest.mark.slow
class TestFig9Offline:
    def test_fig9_structure(self):
        result = run_fig9(ACCURACY)
        methods = set(result.mae_series["ROAD"])
        assert {"SMiLer-GP", "SMiLer-AR", "PSGP", "VLGP", "NysSVR",
                "SgdSVR", "SgdRR"} == methods


class TestPaperTargets:
    def test_table3_targets_consistent(self):
        from repro.harness.paper_targets import TABLE3_PAPER, table3_ratios

        for dataset, rows in TABLE3_PAPER.items():
            # LB_en is the best bound in the paper's own numbers.
            assert rows["en"][0] <= rows["eq"][0]
            assert rows["en"][1] <= rows["ec"][1]
            ratios = table3_ratios(dataset)
            assert ratios["eq_over_en"] > 1.0
            assert ratios["ec_over_en"] > 1.0

    def test_table4_targets_consistent(self):
        from repro.harness.paper_targets import TABLE4_PAPER

        # Online/lazy rows train nothing; the sparse GPs dominate training.
        assert TABLE4_PAPER["SMiLer-GP"][0] == 0.0
        assert TABLE4_PAPER["PSGP"][0] > TABLE4_PAPER["VLGP"][0]
        assert TABLE4_PAPER["FullHW"][1] > TABLE4_PAPER["SMiLer-GP"][1]

    def test_fig13_shape_targets(self):
        import numpy as np

        from repro.harness.paper_targets import FIG13_PAPER_SHAPE

        times = np.asarray(FIG13_PAPER_SHAPE["train_seconds"], dtype=float)
        maes = np.asarray(FIG13_PAPER_SHAPE["mae"], dtype=float)
        assert (np.diff(times) > 0).all()
        assert (np.diff(maes) <= 0).all()
        assert FIG13_PAPER_SHAPE["smiler_gp_mae"] < maes.min()

    def test_shape_checks_have_sources(self):
        from repro.harness.paper_targets import SHAPE_CHECKS

        assert len(SHAPE_CHECKS) >= 9
        for check in SHAPE_CHECKS:
            assert check.source


class TestMemoryModelCrossCheck:
    def test_analytic_matches_real_index(self):
        """index_memory_bytes must track the actual index footprint."""
        import numpy as np

        from repro.core import SMiLerConfig
        from repro.index import WindowLevelIndex

        n = 8000
        config = SMiLerConfig()
        series = np.random.default_rng(0).normal(size=n)
        index = WindowLevelIndex(
            series, config.master_length, config.omega, config.rho
        )
        index.build(series[-config.master_length :])
        analytic = index_memory_bytes(n, config)
        # The live index holds a growth buffer (2x series capacity), so
        # compare against the analytic model's own inventory instead:
        # series + envelope + posting lists at nominal size.
        real_postings = 2 * index.n_sw * index.n_dw * 8
        model_postings = 2 * (config.master_length - config.omega + 1) * (
            n // config.omega
        ) * 8
        assert real_postings == model_postings
        assert analytic == 8 * (3 * n) + model_postings
