"""Unit tests for the metrics registry (repro.obs.registry)."""

import math
import threading

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("requests_total")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_monotonic_negative_increment_rejected(self, registry):
        c = registry.counter("requests_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1.0)

    def test_labelled_series_are_independent(self, registry):
        c = registry.counter("launches_total", label_names=("kernel",))
        c.inc(kernel="dtw_verify")
        c.inc(3, kernel="k_select")
        assert c.value(kernel="dtw_verify") == 1
        assert c.value(kernel="k_select") == 3

    def test_wrong_labels_rejected(self, registry):
        c = registry.counter("launches_total", label_names=("kernel",))
        with pytest.raises(ValueError, match="expects labels"):
            c.inc(device="gpu0")
        with pytest.raises(ValueError, match="expects labels"):
            c.inc()

    def test_label_cardinality_cap(self, registry):
        c = registry.counter(
            "explosive_total", label_names=("id",), max_series=5
        )
        for i in range(5):
            c.inc(id=i)
        with pytest.raises(LabelCardinalityError):
            c.inc(id="one-too-many")

    def test_concurrent_increments_are_lossless(self, registry):
        c = registry.counter("contended_total")
        n_threads, n_incs = 8, 2000

        def work():
            for _ in range(n_incs):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == n_threads * n_incs


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("memory_bytes")
        g.set(100.0)
        g.inc(50.0)
        g.dec(25.0)
        assert g.value() == 125.0

    def test_gauge_may_go_negative(self, registry):
        g = registry.gauge("delta")
        g.dec(3.0)
        assert g.value() == -3.0


class TestHistogram:
    def test_count_and_sum(self, registry):
        h = registry.histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        series = h.series()
        assert series.count == 4
        assert series.sum == pytest.approx(55.55)

    def test_cumulative_buckets(self, registry):
        h = registry.histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        # le=0.1 -> 1, le=1.0 -> 2, le=10.0 -> 3, le=+Inf -> 4.
        assert h.series().cumulative() == [1, 2, 3, 4]

    def test_quantile_interpolates(self, registry):
        h = registry.histogram("latency", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)  # everything in the (1, 2] bucket
        q50 = h.quantile(0.5)
        assert 1.0 < q50 <= 2.0

    def test_quantile_of_empty_series_is_nan(self, registry):
        h = registry.histogram("latency", buckets=(1.0,))
        assert math.isnan(h.quantile(0.5))

    def test_quantile_range_validated(self, registry):
        h = registry.histogram("latency", buckets=(1.0,))
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_labelled_histograms(self, registry):
        h = registry.histogram(
            "latency", label_names=("sensor",), buckets=(1.0, 10.0)
        )
        h.observe(0.5, sensor="a")
        h.observe(5.0, sensor="b")
        assert h.series(sensor="a").count == 1
        assert h.series(sensor="b").count == 1
        assert h.series(sensor="missing") is None

    def test_bad_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("x", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("y", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_idempotent(self, registry):
        a = registry.counter("hits_total")
        b = registry.counter("hits_total")
        assert a is b

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("thing")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("thing")

    def test_invalid_name_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name!")

    def test_metrics_sorted_by_name(self, registry):
        registry.counter("zeta_total")
        registry.gauge("alpha_bytes")
        names = [m.name for m in registry.metrics()]
        assert names == sorted(names)

    def test_reset_clears_everything(self, registry):
        registry.counter("hits_total").inc()
        assert len(registry) == 1
        registry.reset()
        assert len(registry) == 0
        assert "hits_total" not in registry

    def test_membership_and_get(self, registry):
        registry.gauge("memory_bytes")
        assert "memory_bytes" in registry
        assert registry.get("memory_bytes").kind == "gauge"
        assert registry.get("absent") is None
