"""Request-lifecycle telemetry: cross-lane trace propagation, the
structured event log, SLO accounting and Chrome trace-event export.

The load-bearing contract (the PR's acceptance criterion): a
``forecast_all`` over >= 8 sensors with ``workers=4`` produces exactly
one connected trace tree whose root owns one child span per lane, the
tree exports to valid Chrome trace-event JSON, and every resulting
:class:`~repro.service.Forecast`, event-log line and degradation/breaker
metric sample carries the same ``request_id`` — on both backend kinds.
"""

import json
import threading

import numpy as np
import pytest

from repro import PredictionService, SMiLerConfig, obs
from repro.backend import make_backend
from repro.obs import context as reqctx
from repro.obs.events import EventLog
from repro.obs.slo import SLOTarget, SLOTracker
from repro.service import Forecast, ServiceConfig

BACKENDS = ("simulated", "native")

CONFIG = SMiLerConfig(
    elv=(8, 16), ekv=(4, 8), rho=2, omega=4, horizons=(1,), predictor="ar",
)

N_SENSORS = 8
N_BACKENDS = 4


@pytest.fixture(autouse=True)
def _clean_global_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def make_fleet(backend_name: str, workers: int) -> PredictionService:
    service = PredictionService(
        config=CONFIG,
        backends=[make_backend(backend_name) for _ in range(N_BACKENDS)],
        min_history=256,
        service_config=ServiceConfig(max_workers=workers),
    )
    rng = np.random.default_rng(3)
    for i in range(N_SENSORS):
        wave = 50.0 + 10.0 * np.sin(np.arange(300) / 9.0 + i)
        wave += 0.05 * rng.standard_normal(300)
        service.register(f"s{i:02d}", wave)
    return service


class TestConnectedTraceTree:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_forecast_all_one_tree_one_lane_per_shard(self, backend_name):
        obs.enable()
        service = make_fleet(backend_name, workers=4)
        batch = service.forecast_all()
        assert batch.ok and len(batch) == N_SENSORS

        root = service.trace_last_request()
        assert root is not None and root.name == "forecast_all"
        lanes = [c for c in root.children if c.name == "lane"]
        assert len(lanes) == N_BACKENDS
        assert [lane.attrs["lane"] for lane in lanes] == list(range(N_BACKENDS))
        # Every lane subtree holds its shard's forecast spans — the tree
        # is connected across worker threads, not four orphan roots.
        for lane in lanes:
            assert [c.name for c in lane.children] == ["forecast"] * 2
            assert lane.attrs["queue_wait_s"] >= 0.0
            assert lane.attrs["backend_id"].startswith(backend_name)

        # One request id everywhere: root, lanes, forecasts, events.
        request_id = root.attrs["request_id"]
        assert {lane.attrs["request_id"] for lane in lanes} == {request_id}
        assert {f.request_id for f in batch.values()} == {request_id}

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_sequential_tree_has_same_shape(self, backend_name):
        obs.enable()
        service = make_fleet(backend_name, workers=1)
        service.forecast_all()
        root = service.trace_last_request()
        assert root.name == "forecast_all"
        lanes = [c for c in root.children if c.name == "lane"]
        assert len(lanes) == N_BACKENDS
        assert all(len(lane.children) == 2 for lane in lanes)

    def test_single_forecast_keeps_plain_tree(self):
        obs.enable()
        service = make_fleet("native", workers=1)
        forecast = service.forecast("s00")
        root = service.trace_last_request()
        assert root.name == "forecast"
        assert root.attrs["request_id"] == forecast.request_id != ""


class TestRequestIdPropagation:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_events_and_exemplars_carry_the_request_id(self, backend_name):
        obs.enable()
        service = make_fleet(backend_name, workers=4)
        batch = service.forecast_all()
        request_id = service.trace_last_request().attrs["request_id"]
        assert {f.request_id for f in batch.values()} == {request_id}

        events = obs.get_event_log().for_request(request_id)
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "request_start" and kinds[-1] == "request_end"
        end = events[-1]
        assert end["entry_point"] == "forecast_all"
        assert end["n_items"] == N_SENSORS and end["ok"] is True

        registry = obs.get_registry()
        counter = registry.get("smiler_requests_total")
        assert counter.exemplar(**{"class": "forecast_all", "outcome": "ok"}) \
            == {"request_id": request_id}
        hist = registry.get("smiler_lane_queue_wait_seconds")
        for lane in range(N_BACKENDS):
            series = hist.series(lane=lane)
            assert series is not None and series.count == 1
            assert series.exemplar == {"request_id": request_id}

    def test_nested_forecasts_adopt_not_mint(self):
        obs.enable()
        service = make_fleet("native", workers=4)
        service.forecast_all()
        starts = obs.get_event_log().of_kind("request_start")
        # One request_start for the batch; the 8 nested forecast() calls
        # adopted the batch's context instead of minting their own.
        assert [e["entry_point"] for e in starts] == ["forecast_all"]

    def test_ingest_many_is_traced_too(self):
        obs.enable()
        service = make_fleet("native", workers=4)
        service.ingest_many({f"s{i:02d}": 50.0 for i in range(N_SENSORS)})
        root = service.trace_last_request()
        assert root.name == "ingest_many"
        assert sum(c.name == "lane" for c in root.children) == N_BACKENDS
        end = obs.get_event_log().of_kind("request_end")[-1]
        assert end["entry_point"] == "ingest_many"
        assert end["request_id"] == root.attrs["request_id"]

    def test_request_ids_are_minted_even_when_disabled(self):
        service = make_fleet("native", workers=1)
        forecast = service.forecast("s00")
        assert forecast.request_id.startswith("req-")
        # ...but no telemetry was recorded.
        assert len(obs.get_event_log()) == 0
        assert len(obs.get_registry()) == 0

    def test_forecast_equality_ignores_request_id(self):
        kwargs = dict(
            sensor_id="s", horizon=1, mean=1.0, std=0.1,
            interval_low=0.8, interval_high=1.2, level=0.95,
        )
        assert Forecast(**kwargs, request_id="req-a") \
            == Forecast(**kwargs, request_id="req-b")

    def test_scopes_nest_and_reset(self):
        assert reqctx.current_request_id() is None
        with reqctx.begin_request("forecast") as outer:
            assert outer.minted
            assert reqctx.current_request_id() == outer.request_id
            with reqctx.begin_request("forecast") as inner:
                assert not inner.minted
                assert inner.request_id == outer.request_id
        assert reqctx.current_request_id() is None


class TestChromeExport:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_export_validates_and_names_lane_tracks(
        self, backend_name, tmp_path
    ):
        obs.enable()
        service = make_fleet(backend_name, workers=4)
        service.forecast_all()
        root = service.trace_last_request()
        request_id = root.attrs["request_id"]

        path = obs.write_chrome_trace(
            tmp_path / "trace.json", root,
            event_log=obs.get_event_log(), request_id=request_id,
        )
        payload = json.loads(path.read_text())
        obs.validate_chrome_trace(payload)

        tracks = sorted(
            e["args"]["name"] for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        )
        assert tracks[-1] == "main"
        assert [t.split(" ")[0] for t in tracks[:-1]] \
            == [f"lane-{i}" for i in range(N_BACKENDS)]
        # Request lifecycle instants ride along, filtered to the request.
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert {e["args"]["request_id"] for e in instants} == {request_id}

    def test_simulated_gpu_time_exports_async_slices(self):
        obs.enable()
        service = make_fleet("simulated", workers=1)
        service.forecast("s00")
        payload = obs.trace_to_chrome(service.trace_last_request())
        begins = [e for e in payload["traceEvents"] if e["ph"] == "b"]
        ends = [e for e in payload["traceEvents"] if e["ph"] == "e"]
        assert begins and len(begins) == len(ends)
        assert all(e["cat"] == "gpu_sim" for e in begins)
        obs.validate_chrome_trace(payload)

    def test_validator_rejects_malformed_traces(self):
        with pytest.raises(ValueError, match="traceEvents"):
            obs.validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError, match="phase"):
            obs.validate_chrome_trace(
                {"traceEvents": [{"ph": "Z", "name": "x"}]}
            )
        with pytest.raises(ValueError, match="missing fields"):
            obs.validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "ts": 0.0}]}
            )
        with pytest.raises(ValueError, match="finite"):
            obs.validate_chrome_trace(
                {"traceEvents": [
                    {"ph": "X", "name": "x", "ts": -1.0, "dur": 0.0,
                     "pid": 1, "tid": 0},
                ]}
            )
        with pytest.raises(ValueError, match="unbalanced"):
            obs.validate_chrome_trace(
                {"traceEvents": [
                    {"ph": "b", "name": "x", "ts": 0.0, "pid": 1, "tid": 0,
                     "id": 1, "cat": "gpu_sim"},
                ]}
            )


class TestEventLog:
    def test_ring_bound_counts_drops(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("request_start", request_id=f"r{i}")
        assert len(log) == 4
        assert log.dropped_total == 6
        assert log.emitted_total == 10
        assert [e["request_id"] for e in log.tail()] \
            == ["r6", "r7", "r8", "r9"]
        assert [e["request_id"] for e in log.tail(2)] == ["r8", "r9"]

    def test_jsonl_round_trips(self):
        log = EventLog()
        log.emit("degraded", sensor_id="s1", rung="naive")
        lines = log.to_jsonl().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["kind"] == "degraded" and record["rung"] == "naive"

    def test_emit_stamps_bound_request(self):
        log = EventLog()
        with reqctx.begin_request("forecast") as scope:
            event = log.emit("degraded", sensor_id="s")
        assert event["request_id"] == scope.request_id


class TestSLO:
    def test_attainment_and_budget(self):
        tracker = SLOTracker(
            {"forecast": SLOTarget(objective_s=0.1, target=0.9, window=10)}
        )
        for _ in range(9):
            assert tracker.record("forecast", 0.05)
        assert not tracker.record("forecast", 0.5)  # one breach
        assert tracker.attainment("forecast") == pytest.approx(0.9)
        # Budget: (1 - 0.9) * 10 = 1 violation allowed; exactly spent.
        assert tracker.error_budget_remaining("forecast") \
            == pytest.approx(0.0)
        assert not tracker.record("forecast", 0.5)  # overdraw
        assert tracker.error_budget_remaining("forecast") < 0.0

    def test_errors_burn_budget_regardless_of_latency(self):
        tracker = SLOTracker()
        assert not tracker.record("forecast", 0.0, ok=False)

    def test_served_degraded_accounting_flows_from_hook(self):
        obs.enable()
        obs.observe_degraded_forecast("s1", "naive")
        obs.observe_degraded_forecast("s2", "ar")
        obs.observe_degraded_forecast("s3", "naive")
        assert obs.get_slo_tracker().served_degraded() \
            == {"naive": 2, "ar": 1}
        registry = obs.get_registry()
        counter = registry.get("smiler_slo_served_degraded_total")
        assert counter.value(rung="naive") == 2.0

    def test_request_end_mirrors_slo_gauges_and_status(self):
        obs.enable()
        obs.configure_slo(
            {"forecast": SLOTarget(objective_s=0.01, target=0.5, window=4)}
        )
        obs.observe_request_end("forecast", "req-1", 0.005)
        obs.observe_request_end("forecast", "req-2", 5.0)  # breach
        registry = obs.get_registry()
        gauge = registry.get("smiler_slo_attainment_ratio")
        assert gauge.value(**{"class": "forecast"}) == pytest.approx(0.5)
        breaches = registry.get("smiler_slo_breaches_total")
        assert breaches.value(**{"class": "forecast"}) == 1.0
        assert breaches.exemplar(**{"class": "forecast"}) \
            == {"request_id": "req-2"}

    def test_status_exposes_slo_and_event_counters(self):
        obs.enable()
        service = make_fleet("native", workers=1)
        service.forecast_all()
        status = service.status()
        assert "forecast_all" in status["slo"]["classes"]
        record = status["slo"]["classes"]["forecast_all"]
        assert record["window_samples"] == 1
        assert status["events"]["emitted_total"] >= 2
        assert status["events"]["dropped_total"] == 0


class TestResilienceEventFlow:
    def test_breaker_and_fault_events_carry_request_context(self):
        obs.enable()
        with reqctx.begin_request("forecast") as scope:
            obs.get_event_log()  # the hooks emit via the global log
            from repro.obs import hooks
            hooks.observe_fault_injected("dtw_verification", "kernel_error")
            hooks.observe_breaker_transition(1, "closed", "open")
            hooks.observe_evacuation(1, 3)
        events = obs.get_event_log().for_request(scope.request_id)
        assert [e["kind"] for e in events] \
            == ["fault_injected", "breaker_transition", "evacuation"]
        assert events[1]["backend_id"] == 1
        assert events[2]["n_sensors"] == 3


class TestConcurrentScrape:
    def test_prometheus_render_while_workers_mutate(self):
        """Exposition under concurrent mutation stays parseable with
        label escaping intact (the satellite pinned by this PR)."""
        obs.enable()
        registry = obs.get_registry()
        stop = threading.Event()
        awkward = 'sensor "A"\n'  # exercises quote + newline escaping

        def mutate():
            counter = registry.counter(
                "smiler_forecasts_total", "f.",
                label_names=("sensor_id", "horizon"),
            )
            hist = registry.histogram(
                "smiler_forecast_latency_seconds", "l.",
                label_names=("sensor_id",),
            )
            i = 0
            while not stop.is_set():
                sid = awkward if i % 3 == 0 else f"s{i % 7}"
                counter.inc(
                    sensor_id=sid, horizon=1,
                    exemplar={"request_id": f"req-{i}"},
                )
                hist.observe(0.001 * (i % 50), sensor_id=sid)
                i += 1

        workers = [threading.Thread(target=mutate) for _ in range(4)]
        for w in workers:
            w.start()
        try:
            for _ in range(20):
                text = obs.to_prometheus(registry)
                for line in text.splitlines():
                    assert line.startswith("#") or " " in line
                    # Escaped label values keep every sample on one
                    # parseable line: raw newlines would break this.
                    if '"' in line and not line.startswith("#"):
                        assert line.count("{") == 1 and line.count("}") == 1
                snapshot = obs.to_json(registry)
                json.dumps(snapshot)  # JSON-serialisable mid-mutation
        finally:
            stop.set()
            for w in workers:
                w.join()
        rendered = obs.to_prometheus(registry)
        assert r'sensor \"A\"\n' in rendered
