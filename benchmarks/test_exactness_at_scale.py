"""Confidence bench: the index is *exact* at benchmark scale.

Not a paper figure — the guarantee behind all of them: the two-level
index with filtering and threshold reuse returns byte-identical kNN
distances to brute-force banded DTW, at the same scale the timing
benchmarks run, on all three datasets, including continuous steps.
"""

import numpy as np

from repro.dtw import dtw_batch
from repro.harness import SearchScale
from repro.index import SuffixKnnEngine, SuffixSearchConfig
from repro.timeseries import make_dataset

SCALE = SearchScale(n_sensors=1, n_points=12_000, continuous_steps=4)


def brute_distances(series, master, d, k, rho, margin):
    from numpy.lib.stride_tricks import sliding_window_view

    query = master[master.size - d :]
    starts = np.arange(series.size - d - margin + 1)
    segments = sliding_window_view(series, d)[starts]
    distances = dtw_batch(query, segments, rho)
    return np.sort(distances)[: min(k, starts.size)]


def test_exactness_at_benchmark_scale(benchmark, save_report):
    def run():
        report_lines = []
        for dataset in ("ROAD", "MALL", "NET"):
            ds = make_dataset(
                dataset, n_sensors=1,
                n_points=SCALE.n_points + SCALE.continuous_steps,
                test_points=SCALE.continuous_steps, seed=SCALE.seed,
            )
            history, tail = ds.sensor(0)
            config = SuffixSearchConfig(
                item_lengths=SCALE.item_lengths, k_max=32,
                omega=SCALE.omega, rho=SCALE.rho, margin=1,
            )
            engine = SuffixKnnEngine(history.values, config)
            answers = engine.search()
            checked = 0
            for point in tail:
                answers = engine.step(float(point))
            stream = np.concatenate([history.values, tail])
            for d, answer in answers.items():
                expected = brute_distances(
                    stream, stream[-max(SCALE.item_lengths):], d, 32,
                    SCALE.rho, 1,
                )
                np.testing.assert_allclose(
                    np.sort(answer.distances), expected, atol=1e-9
                )
                checked += expected.size
            report_lines.append(
                f"{dataset}: {checked} kNN distances identical to brute force"
            )
        return "\n".join(report_lines)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("exactness_at_scale", report)
    print("\n" + report)
    assert "identical" in report
