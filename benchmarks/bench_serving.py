"""Serving-layer benchmark: latency/throughput across worker-lane counts.

Not a pytest benchmark — run it directly::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py \
        --backend native --sensors 64 --workers-list 1,2,4,8

For every worker count it builds an *identical* service (same seeded
histories, same backend shards), drives warm-up plus measured rounds of
``forecast_all`` + ``ingest_many``, and writes ``BENCH_serving.json``
with:

* wall-clock p50/p99 per-batch latency and forecast throughput,
* wall speedup vs the sequential (workers=1) run,
* the **simulated** fleet numbers: per-backend simulated seconds, their
  sum (serial device time) and max (fleet-parallel device time) — the
  deterministic speedup the cost model predicts for a real multi-device
  fleet, independent of host core count,
* a bit-identical cross-check: every worker count must serve the exact
  Forecasts of the sequential run (the concurrency contract pinned by
  ``tests/test_concurrency.py``).

Wall-clock numbers are hardware-dependent — Python threads only overlap
NumPy kernel time (the GIL serialises the rest), so single-core hosts
show speedups near 1.0 while the simulated fleet numbers stay the same
everywhere.  See ``benchmarks/README.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.backend import make_backend  # noqa: E402
from repro.core import SMiLerConfig  # noqa: E402
from repro.exec import ENGINE_NAMES  # noqa: E402
from repro.service import PredictionService, ServiceConfig  # noqa: E402

CONFIG = SMiLerConfig(
    elv=(8, 16), ekv=(4, 8), rho=2, omega=4, horizons=(1, 3),
    predictor="ar",
)


def make_workload(n_sensors: int, n_points: int, n_future: int):
    rng = np.random.default_rng(42)
    histories, futures = {}, {}
    for i in range(n_sensors):
        sensor_id = f"s{i:03d}"
        phase = rng.uniform(0.0, 2.0 * np.pi)
        t = np.arange(n_points + n_future)
        wave = 100.0 + 25.0 * np.sin(t / 7.0 + phase)
        wave += 0.05 * rng.normal(size=t.size)
        histories[sensor_id] = wave[:n_points]
        futures[sensor_id] = wave[n_points:]
    return histories, futures


def build_service(backend_name: str, n_backends: int, workers: int,
                  engine: str | None):
    backends = [make_backend(backend_name) for _ in range(n_backends)]
    return PredictionService(
        CONFIG,
        backends=backends,
        min_history=100,
        service_config=ServiceConfig(max_workers=workers, engine=engine),
    )


def run_one(backend_name, n_backends, workers, histories, futures,
            warmup, rounds, engine=None):
    service = build_service(backend_name, n_backends, workers, engine)
    engine_name = service.status()["engine"]
    for sensor_id, history in histories.items():
        service.register(sensor_id, history)
    step = 0
    for _ in range(warmup):
        service.forecast_all()
        service.ingest_many(
            {sid: float(futures[sid][step]) for sid in histories}
        )
        step += 1
    # Engine-aware: the process engine must forward the reset to its
    # live workers, not just zero the parent's backend copies.
    service.reset_time()
    latencies, batches = [], []
    t_start = time.perf_counter()
    for _ in range(rounds):
        t0 = time.perf_counter()
        batch = service.forecast_all()
        latencies.append(time.perf_counter() - t0)
        batches.append(dict(batch))
        service.ingest_many(
            {sid: float(futures[sid][step]) for sid in histories}
        )
        step += 1
    wall_total = time.perf_counter() - t_start
    # Flush worker state back to the parent before reading the ledgers.
    service.close()
    sim_seconds = [backend.elapsed_s for backend in service.backends]
    latencies = np.asarray(latencies)
    return {
        "workers": workers,
        "engine": engine_name,
        "p50_batch_s": float(np.percentile(latencies, 50)),
        "p99_batch_s": float(np.percentile(latencies, 99)),
        "throughput_forecasts_per_s": float(
            rounds * len(histories) / wall_total
        ),
        "wall_total_s": float(wall_total),
        "sim_backend_seconds": [float(s) for s in sim_seconds],
        "sim_serial_s": float(sum(sim_seconds)),
        "sim_parallel_s": float(max(sim_seconds)),
        "sim_parallel_speedup": (
            float(sum(sim_seconds) / max(sim_seconds))
            if max(sim_seconds) > 0 else 1.0
        ),
    }, batches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", default="simulated",
                        help="compute backend kind (default: simulated)")
    parser.add_argument("--sensors", type=int, default=48)
    parser.add_argument("--backends", type=int, default=4,
                        help="shards in the pool (default: 4)")
    parser.add_argument("--history", type=int, default=280)
    parser.add_argument("--workers-list", default="1,2,4,8",
                        help="comma-separated lane counts (default: 1,2,4,8)")
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=8)
    parser.add_argument(
        "--engine", choices=ENGINE_NAMES, default=None,
        help="execution engine for every run (default: resolved per "
        "worker count — inline at 1, thread lanes above)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_serving.json",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: 8 sensors, 2 rounds, workers 1 and 4 "
        "(overrides --sensors/--rounds/--workers-list)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.sensors = 8
        args.rounds = 2
        args.workers_list = "1,4"
    workers_list = [int(w) for w in args.workers_list.split(",")]

    cpu_count = os.cpu_count()
    print(f"host cpu_count={cpu_count} "
          f"(wall speedups need cpu_count > workers to mean anything)")
    histories, futures = make_workload(
        args.sensors, args.history, args.warmup + args.rounds
    )
    results, reference_batches = [], None
    for workers in workers_list:
        result, batches = run_one(
            args.backend, args.backends, workers, histories, futures,
            args.warmup, args.rounds, engine=args.engine,
        )
        if reference_batches is None:
            reference_batches = batches
            result["identical_to_sequential"] = True
        else:
            result["identical_to_sequential"] = batches == reference_batches
        baseline = results[0]["wall_total_s"] if results else result["wall_total_s"]
        result["wall_speedup_vs_sequential"] = float(
            baseline / result["wall_total_s"]
        )
        # Wall speedup only measures lane overlap when there are spare
        # host cores to overlap on; flag the number as noise otherwise
        # (the simulated fleet numbers are host-independent either way).
        meaningful = cpu_count is not None and cpu_count > workers
        result["wall_speedup_meaningful"] = meaningful
        if workers > 1 and not meaningful:
            print(
                f"WARNING: cpu_count={cpu_count} <= workers={workers}; "
                "wall_speedup_vs_sequential is not meaningful on this host "
                "— read sim_parallel_speedup instead",
                file=sys.stderr,
            )
        results.append(result)
        print(
            f"workers={workers} engine={result['engine']}: "
            f"p50={result['p50_batch_s'] * 1e3:.1f}ms "
            f"p99={result['p99_batch_s'] * 1e3:.1f}ms "
            f"throughput={result['throughput_forecasts_per_s']:.0f}/s "
            f"wall-speedup={result['wall_speedup_vs_sequential']:.2f}x "
            f"sim-parallel-speedup={result['sim_parallel_speedup']:.2f}x "
            f"identical={result['identical_to_sequential']}"
        )
        if not result["identical_to_sequential"]:
            print("ERROR: concurrent batch diverged from sequential",
                  file=sys.stderr)
            return 1

    payload = {
        "benchmark": "serving",
        "config": {
            "backend": args.backend,
            "sensors": args.sensors,
            "backends": args.backends,
            "history_points": args.history,
            "warmup_rounds": args.warmup,
            "measured_rounds": args.rounds,
            "engine": args.engine,
        },
        "host": {"cpu_count": os.cpu_count()},
        "results": results,
    }
    canonical = (
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"
    )
    noise = [
        r["workers"] for r in results
        if r["workers"] > 1 and not r["wall_speedup_meaningful"]
    ]
    if args.out.resolve() == canonical and noise:
        print(
            f"ERROR: refusing to publish {canonical.name}: wall speedups "
            f"for workers={noise} are noise on this host "
            f"(cpu_count={cpu_count}).  Re-run on a host with more cores, "
            "or write elsewhere with --out for a local look.",
            file=sys.stderr,
        )
        return 1
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
