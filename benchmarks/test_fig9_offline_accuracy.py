"""Fig. 9: MAE and MNLPD against the offline (eager) competitors.

Paper's claims: SMiLer-GP has the lowest MAE at every horizon on every
dataset; its MNLPD is best or comparable; the low-rank GP approximations
(PSGP/VLGP) trail because they smooth away local patterns.
"""

import numpy as np

from repro.harness import AccuracyScale, run_fig9

SCALE = AccuracyScale(
    n_sensors=2, n_points=12_000, test_points=140, steps=110,
    horizons=(1, 5, 10, 20, 30),
)


def test_fig9_offline_models(benchmark, save_report):
    result = benchmark.pedantic(lambda: run_fig9(SCALE), rounds=1, iterations=1)
    report = result.render()
    save_report("fig9_offline_accuracy", report)
    print("\n" + report)

    eager = ("PSGP", "VLGP", "NysSVR", "SgdSVR", "SgdRR")
    for dataset in SCALE.datasets:
        smiler = result.method_mae(dataset, "SMiLer-GP")
        beaten = 0
        for method in eager:
            other = result.method_mae(dataset, method)
            # Never badly behind any eager model over the horizon sweep...
            assert smiler.mean() < other.mean() * 1.2, (dataset, method)
            beaten += smiler.mean() < other.mean() * 1.02
        # ...and ahead of the clear majority (the paper reports a clean
        # sweep on real data; our synthetic stand-ins are noisier).
        assert beaten >= 3, dataset
        # MNLPD: SMiLer-GP is never catastrophically miscalibrated.
        smiler_nlpd = result.method_mnlpd(dataset, "SMiLer-GP").mean()
        assert np.isfinite(smiler_nlpd)
        worst = max(result.method_mnlpd(dataset, m).mean() for m in eager)
        assert smiler_nlpd < worst + 0.5, dataset
