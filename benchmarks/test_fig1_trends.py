"""Fig. 1: hardware trends motivating semi-lazy learning (Appendix A)."""

from repro.harness import render_fig1
from repro.harness.trends import (
    CPU_CORES_BY_YEAR,
    GPU_MEMORY_BY_YEAR,
    GPU_TFLOPS_BY_YEAR,
    MEMORY_PRICE_BY_YEAR,
)


def test_fig1_trends(benchmark, save_report):
    report = benchmark.pedantic(render_fig1, rounds=1, iterations=1)
    save_report("fig1_trends", report)
    print("\n" + report)

    years = sorted(CPU_CORES_BY_YEAR)
    # The monotone growth stories of Fig. 1 (a), (b), (d)...
    assert CPU_CORES_BY_YEAR[years[-1]] > 10 * CPU_CORES_BY_YEAR[years[0]]
    assert GPU_TFLOPS_BY_YEAR[years[-1]] > 50 * GPU_TFLOPS_BY_YEAR[years[0]]
    assert GPU_MEMORY_BY_YEAR[years[-1]] > 20 * GPU_MEMORY_BY_YEAR[years[0]]
    # ...and the price collapse of (c).
    assert MEMORY_PRICE_BY_YEAR[years[-1]] < MEMORY_PRICE_BY_YEAR[years[0]] / 10
