"""Table 3: effect of the enhanced lower bound LB_en.

Paper's claim: LB_en leaves roughly half the unfiltered candidates of
LB_EQ and two-thirds of LB_EC, with verification time shrinking in
proportion, on all three datasets.
"""

from repro.harness import SearchScale, run_table3

SCALE = SearchScale(n_sensors=2, n_points=12_000, continuous_steps=8)


def test_table3_enhanced_lower_bound(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_table3(SCALE), rounds=1, iterations=1
    )
    report = result.render()
    save_report("table3_lower_bounds", report)
    print("\n" + report)

    for dataset, per_mode in result.data.items():
        time_en, n_en = per_mode["en"]
        time_eq, n_eq = per_mode["eq"]
        time_ec, n_ec = per_mode["ec"]
        # The enhanced bound never filters worse than either side...
        assert n_en <= n_eq + 1e-9, dataset
        assert n_en <= n_ec + 1e-9, dataset
        assert time_en <= time_eq * 1.02, dataset
        assert time_en <= time_ec * 1.02, dataset
        # ...and strictly beats the weaker side somewhere (paper: ~50%).
    improvements = [
        per_mode["eq"][1] / max(per_mode["en"][1], 1e-9)
        for per_mode in result.data.values()
    ]
    assert max(improvements) > 1.05
