"""Fig. 13: PSGP active points vs SMiLer-GP.

Paper's claims: PSGP's training time explodes with the number of active
points while its MAE improvement saturates past ~32; SMiLer-GP — with no
training phase at all — still matches or beats PSGP's best MAE.
"""

import numpy as np

from repro.harness import AccuracyScale, run_fig13

SCALE = AccuracyScale(
    n_sensors=2, n_points=3500, test_points=90, steps=70, horizons=(1,),
)
ACTIVE = (4, 8, 16, 32, 64, 128)


def test_fig13_psgp_tradeoff(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_fig13(SCALE, active_points=ACTIVE), rounds=1, iterations=1
    )
    report = result.render()
    save_report("fig13_psgp_tradeoff", report)
    print("\n" + report)

    for dataset, (times, maes) in result.psgp.items():
        times = np.asarray(times)
        maes = np.asarray(maes)
        # Training cost grows steeply with active points...
        assert times[-1] > 4 * times[0], dataset
        # ...while accuracy saturates: the last doubling buys less than
        # the first ones (diminishing marginal improvement).
        early_gain = maes[0] - maes[2]
        late_gain = maes[-2] - maes[-1]
        assert late_gain < max(early_gain, 0.02) + 1e-9, dataset
        # SMiLer-GP (no training) is competitive with PSGP's best.
        assert result.smiler_mae[dataset] < maes.min() * 1.35, dataset
