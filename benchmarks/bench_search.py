"""Search-cascade benchmark: tiered pruning vs the single-filter baseline.

Not a pytest benchmark — run it directly::

    PYTHONPATH=src python benchmarks/bench_search.py
    PYTHONPATH=src python benchmarks/bench_search.py \
        --backend native --points 60000 --steps 24

Builds two :class:`~repro.index.suffix_search.SuffixKnnEngine` instances
over the *same* seeded series — one with the full pruning cascade
(LB_Kim → LB_w → LB_Improved → early-abandoning DTW), one with
``cascade=False`` (the pre-cascade pipeline: single LB_w filter pass,
unpruned verification) — drives both through identical continuous
steps, and writes ``BENCH_search.json`` with:

* candidates/s for both modes and the cascade's speedup (the headline:
  the cascade must clear 2x),
* per-tier prune rates (fraction of all candidates killed by LB_Kim,
  LB_w, LB_Improved, and abandoned mid-DTW) plus the verified fraction,
* simulated kernel seconds per mode from the backend ledger,
* an exactness cross-check: every step's answers must be bit-identical
  between the two modes, and the final step is verified start-for-start
  and distance-for-distance against the full-DTW reference scan
  (:func:`repro.index.reference.suffix_knn_reference`).

The candidates/s ratio is wall-clock, so absolute numbers are
hardware-dependent; the prune rates and simulated seconds are
deterministic for a given seed.  See ``benchmarks/README.md``.

The default band is ``rho=24``, wider than the paper's Table 2 default
of 8, and deliberately so: envelope-based bounds (LB_w, LB_Improved)
loosen as the band widens, so narrow bands let the precomputed LB_w
filter alone prune ~99% of candidates and leave the cascade little wall
time to win back — its gains there show up as fewer verified candidates
(simulated kernel seconds), not host seconds.  Wide bands are the regime
where verification dominates and the band-independent LB_Kim tier plus
early abandoning pay off; that is the trade-off this benchmark is
measuring.  Use ``--rho 8`` to reproduce the narrow-band numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.backend import make_backend  # noqa: E402
from repro.index import SuffixKnnEngine, SuffixSearchConfig  # noqa: E402
from repro.index.reference import suffix_knn_reference  # noqa: E402

TIERS = ("kim", "window", "improved", "abandoned")


def make_workload(n_points: int, n_steps: int, seed: int = 42) -> np.ndarray:
    """Self-similar sensor-like series: trend + season + noise."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_points + n_steps)
    wave = 10.0 * np.sin(t / 23.0) + 3.0 * np.sin(t / 7.0 + 1.3)
    wave += np.cumsum(0.02 * rng.normal(size=t.size))
    wave += 0.1 * rng.normal(size=t.size)
    return wave


def build_engine(series, backend_name: str, cascade: bool,
                 args) -> SuffixKnnEngine:
    cfg = SuffixSearchConfig(
        item_lengths=tuple(int(d) for d in args.lengths.split(",")),
        k_max=args.k, omega=args.omega, rho=args.rho, margin=1,
        cascade=cascade,
    )
    return SuffixKnnEngine(series, cfg, backend=make_backend(backend_name))


def run_mode(engine: SuffixKnnEngine, future: np.ndarray):
    """Initial search (warm-up) then timed continuous steps."""
    engine.search()
    engine.backend.reset_time()
    stats = {
        "candidates_total": 0,
        "candidates_unfiltered": 0,
        "candidates_verified": 0,
        **{f"pruned_{tier}": 0 for tier in TIERS[:3]},
        "abandoned_early": 0,
        "verification_sim_s": 0.0,
        "selection_sim_s": 0.0,
    }
    per_step_answers = []
    t0 = time.perf_counter()
    for point in future:
        answers = engine.step(float(point))
        per_step_answers.append(answers)
    wall_s = time.perf_counter() - t0
    for answers in per_step_answers:
        for a in answers.values():
            stats["candidates_total"] += a.candidates_total
            stats["candidates_unfiltered"] += a.candidates_unfiltered
            stats["candidates_verified"] += a.candidates_verified
            stats["pruned_kim"] += a.pruned_kim
            stats["pruned_window"] += a.pruned_window
            stats["pruned_improved"] += a.pruned_improved
            stats["abandoned_early"] += a.abandoned_early
            stats["verification_sim_s"] += a.verification_sim_s
            stats["selection_sim_s"] += a.selection_sim_s
    return wall_s, stats, per_step_answers


def check_exactness(engine: SuffixKnnEngine, answers) -> bool:
    """Final-step answers vs the full-DTW reference scan, bit for bit."""
    for d, answer in answers.items():
        ref_starts, ref_dist = suffix_knn_reference(
            engine.series, engine.item_query(d), engine.config.k_max,
            engine.config.rho, margin=engine.config.margin,
        )
        if not np.array_equal(answer.starts, ref_starts):
            return False
        if not np.array_equal(answer.distances, ref_dist):
            return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", default="simulated",
                        help="compute backend kind (default: simulated)")
    parser.add_argument("--points", type=int, default=40_000,
                        help="history length (default: 40000)")
    parser.add_argument("--steps", type=int, default=16,
                        help="measured continuous steps (default: 16)")
    parser.add_argument("--lengths", default="32,64,96",
                        help="item lengths (default: 32,64,96)")
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--omega", type=int, default=16)
    parser.add_argument("--rho", type=int, default=24,
                        help="Sakoe-Chiba band half-width (default: 24 — "
                        "see the module docstring on why the bench widens "
                        "the band beyond the paper's rho=8)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_search.json",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: 4000 points, 4 steps (overrides "
        "--points/--steps); exactness checks still run in full",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.points = 4_000
        args.steps = 4

    series_full = make_workload(args.points, args.steps, seed=args.seed)
    series, future = series_full[: args.points], series_full[args.points :]

    runs = {}
    answers_by_mode = {}
    for label, cascade in (("baseline", False), ("cascade", True)):
        engine = build_engine(series, args.backend, cascade, args)
        wall_s, stats, per_step = run_mode(engine, future)
        runs[label] = {
            "wall_s": wall_s,
            "sim_s": engine.backend.elapsed_s,
            "stats": stats,
            "engine": engine,
        }
        answers_by_mode[label] = per_step

    # Both modes are the same exact search: every step, every item
    # length, starts AND distances must agree bit-for-bit.
    modes_identical = True
    for step_base, step_casc in zip(
        answers_by_mode["baseline"], answers_by_mode["cascade"]
    ):
        for d in step_base:
            if not np.array_equal(step_base[d].starts, step_casc[d].starts):
                modes_identical = False
            if not np.array_equal(
                step_base[d].distances, step_casc[d].distances
            ):
                modes_identical = False
    reference_exact = check_exactness(
        runs["cascade"]["engine"], answers_by_mode["cascade"][-1]
    )

    results = {}
    for label, run in runs.items():
        stats = run["stats"]
        total = stats["candidates_total"]
        results[label] = {
            "wall_s": float(run["wall_s"]),
            "sim_s": float(run["sim_s"]),
            "candidates_total": int(total),
            "candidates_per_s": float(total / run["wall_s"]),
            "unfiltered_rate": float(stats["candidates_unfiltered"] / total),
            "verified_rate": float(stats["candidates_verified"] / total),
            "verification_sim_s": float(stats["verification_sim_s"]),
            "selection_sim_s": float(stats["selection_sim_s"]),
        }
    casc_stats = runs["cascade"]["stats"]
    total = casc_stats["candidates_total"]
    results["cascade"]["prune_rates"] = {
        "kim": float(casc_stats["pruned_kim"] / total),
        "window": float(casc_stats["pruned_window"] / total),
        "improved": float(casc_stats["pruned_improved"] / total),
        "abandoned": float(casc_stats["abandoned_early"] / total),
    }
    speedup = (
        results["cascade"]["candidates_per_s"]
        / results["baseline"]["candidates_per_s"]
    )

    rates = results["cascade"]["prune_rates"]
    print(
        f"baseline:  {results['baseline']['candidates_per_s']:,.0f} cand/s "
        f"({results['baseline']['wall_s']:.2f}s wall)"
    )
    print(
        f"cascade:   {results['cascade']['candidates_per_s']:,.0f} cand/s "
        f"({results['cascade']['wall_s']:.2f}s wall)  "
        f"speedup={speedup:.2f}x"
    )
    print(
        "prune rates: "
        + "  ".join(f"{tier}={rates[tier]:.1%}" for tier in TIERS)
        + f"  verified={results['cascade']['verified_rate']:.2%}"
    )
    print(f"exact: modes_identical={modes_identical} "
          f"reference_exact={reference_exact}")
    if not (modes_identical and reference_exact):
        print("ERROR: cascade answers diverged — the cascade must be a "
              "pure optimisation", file=sys.stderr)
        return 1

    payload = {
        "benchmark": "search",
        "config": {
            "backend": args.backend,
            "points": args.points,
            "steps": args.steps,
            "item_lengths": [int(d) for d in args.lengths.split(",")],
            "k_max": args.k,
            "omega": args.omega,
            "rho": args.rho,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "host": {"cpu_count": os.cpu_count()},
        "results": {
            "baseline": results["baseline"],
            "cascade": results["cascade"],
            "speedup_candidates_per_s": float(speedup),
            "modes_identical": modes_identical,
            "reference_exact": reference_exact,
        },
    }
    canonical = (
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_search.json"
    )
    if args.out.resolve() == canonical and args.smoke:
        print(
            f"ERROR: refusing to publish {canonical.name} from a --smoke "
            "run: the smoke workload is too small for the candidates/s "
            "numbers to mean anything.  Write elsewhere with --out.",
            file=sys.stderr,
        )
        return 1
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
