"""Table 4: running time comparison across all twelve methods.

Paper's claims: SMiLer has *no* training phase; its per-query prediction
time is larger than the trained models' (the accuracy/time trade-off)
but far below FullHW/SegHW; the eager models pay substantial training
bills, with the sparse GPs the most expensive family.
"""

import numpy as np

from repro.harness import AccuracyScale, run_table4

SCALE = AccuracyScale(
    n_sensors=2, n_points=3500, test_points=60, steps=40, horizons=(1,),
)


def test_table4_running_time(benchmark, save_report):
    result = benchmark.pedantic(lambda: run_table4(SCALE), rounds=1, iterations=1)
    report = result.render()
    save_report("table4_running_time", report)
    print("\n" + report)

    for dataset, per_method in result.data.items():
        # SMiLer: no training phase at all.
        assert per_method["SMiLer-GP"][0] == 0.0
        assert per_method["SMiLer-AR"][0] == 0.0
        # Eager models train; the sparse GPs are the costly family.
        sgd_train = per_method["SgdSVR"][0]
        gp_train = per_method["PSGP"][0] + per_method["VLGP"][0]
        assert gp_train > sgd_train
        # Linear models answer queries orders of magnitude faster than
        # SMiLer-GP; Holt-Winters rebuilt per query is slower than
        # SMiLer-AR (the paper's extreme rows).
        assert per_method["SgdSVR"][1] < per_method["SMiLer-GP"][1] / 10
        assert per_method["FullHW"][1] > per_method["SMiLer-AR"][1]
        # Everything produced positive prediction times.
        assert all(np.isfinite(prd) and prd > 0 for _, prd in per_method.values())
