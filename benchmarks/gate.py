"""Benchmark regression gate: fresh smoke runs vs committed baselines.

CI regenerates CI-sized ("smoke") runs of every benchmark —
``bench_search.py --smoke``, ``bench_serving.py --smoke`` and
``python -m repro.cli ablate --smoke`` — into a scratch directory and
this gate compares them against the committed baselines under
``benchmarks/baselines/``, failing the build on a regression larger
than the threshold (``--threshold-pct``, default 10%).

What is enforced and what is skipped is **host-aware**, mirroring the
benchmarks themselves:

* **Hard invariants** (any threshold): exactness flags —
  ``modes_identical`` / ``reference_exact`` on the search bench,
  ``identical_to_sequential`` on every serving row, run-ID agreement on
  the ablation study (an ID drift means the workload config changed
  without regenerating the baseline).
* **Deterministic metrics** (always enforced): simulated kernel
  seconds, prune/verified rates, MAE.  These are pure functions of the
  seeded workload, independent of the host, which is why smoke-sized
  baselines can be committed at all.
* **Wall-clock metrics** (conditionally enforced): throughput and
  latency comparisons are skipped unless the *fresh* host has spare
  cores (``cpu_count > 1``) and the row says ``wall_speedup_meaningful``
  — a single-core CI runner cannot regress a wall number meaningfully.

Usage::

    python benchmarks/gate.py --fresh-dir /tmp/fresh [--threshold-pct 10]
    python benchmarks/gate.py --update          # regenerate the baselines

Exit codes: 0 = gate green, 1 = regression (or missing fresh file),
2 = usage / malformed payload.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from dataclasses import dataclass

__all__ = [
    "Check",
    "GateError",
    "compare_payloads",
    "compare_search",
    "compare_serving",
    "compare_ablation",
    "gate_directories",
    "render_checks",
]

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_DIR = pathlib.Path(__file__).resolve().parent / "baselines"

#: The benchmark files the gate covers, and the command that
#: regenerates each one's smoke baseline (run from the repo root).
BASELINE_FILES: dict[str, tuple[str, ...]] = {
    "BENCH_search.json": (
        "benchmarks/bench_search.py", "--smoke", "--out", "{out}",
    ),
    "BENCH_serving.json": (
        "benchmarks/bench_serving.py", "--smoke", "--out", "{out}",
    ),
    "BENCH_ablation.json": (
        "-m", "repro.cli", "ablate", "--smoke", "--out", "{out}",
    ),
}


class GateError(ValueError):
    """A payload the gate cannot interpret (wrong schema, bad pairing)."""


@dataclass(frozen=True)
class Check:
    """One gate comparison: a named metric and its verdict."""

    name: str
    status: str  # "pass" | "fail" | "skip"
    detail: str

    @property
    def failed(self) -> bool:
        return self.status == "fail"


def _get(payload: dict, dotted: str) -> object:
    node: object = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise GateError(f"payload is missing {dotted!r} (at {part!r})")
        node = node[part]
    return node


def _check_invariant(payload: dict, dotted: str, label: str) -> Check:
    value = _get(payload, dotted)
    if value is True:
        return Check(label, "pass", "holds")
    return Check(label, "fail", f"{dotted} is {value!r}, expected True")


def _check_metric(
    label: str,
    baseline: float,
    fresh: float,
    threshold_pct: float,
    higher_is_worse: bool,
) -> Check:
    """Relative regression check with a near-zero-baseline guard."""
    base = float(baseline)
    cur = float(fresh)
    denom = max(abs(base), 1e-12)
    delta_pct = (cur - base) / denom * 100.0
    regression_pct = delta_pct if higher_is_worse else -delta_pct
    detail = f"baseline {base:.6g} -> fresh {cur:.6g} ({delta_pct:+.1f}%)"
    if regression_pct > threshold_pct:
        return Check(
            label, "fail",
            f"{detail} exceeds the {threshold_pct:g}% regression threshold",
        )
    return Check(label, "pass", detail)


def _wall_meaningful(fresh_payload: dict, *rows: dict) -> bool:
    """Whether wall-clock comparisons mean anything on the fresh host."""
    cpu_count = fresh_payload.get("host", {}).get("cpu_count")
    if not isinstance(cpu_count, int) or cpu_count <= 1:
        return False
    return all(row.get("wall_speedup_meaningful", False) for row in rows)


def _skip_wall(label: str) -> Check:
    return Check(
        label, "skip",
        "wall-clock not meaningful on this host (cpu_count<=1 or "
        "wall_speedup_meaningful false)",
    )


def _require_benchmark(payload: dict, kind: str, role: str) -> None:
    got = payload.get("benchmark")
    if got != kind:
        raise GateError(
            f"{role} payload is benchmark {got!r}, expected {kind!r}"
        )


# ------------------------------------------------------------------ search
def compare_search(
    baseline: dict, fresh: dict, threshold_pct: float
) -> list[Check]:
    """Gate the search-cascade bench: exactness + sim time + prune rates."""
    _require_benchmark(baseline, "search", "baseline")
    _require_benchmark(fresh, "search", "fresh")
    checks = [
        _check_invariant(
            fresh, "results.modes_identical", "search.modes_identical"
        ),
        _check_invariant(
            fresh, "results.reference_exact", "search.reference_exact"
        ),
    ]
    for mode in ("baseline", "cascade"):
        checks.append(_check_metric(
            f"search.{mode}.sim_s",
            _get(baseline, f"results.{mode}.sim_s"),
            _get(fresh, f"results.{mode}.sim_s"),
            threshold_pct, higher_is_worse=True,
        ))
        checks.append(_check_metric(
            f"search.{mode}.verified_rate",
            _get(baseline, f"results.{mode}.verified_rate"),
            _get(fresh, f"results.{mode}.verified_rate"),
            threshold_pct, higher_is_worse=True,
        ))
    base_rates = _get(baseline, "results.cascade.prune_rates")
    fresh_rates = _get(fresh, "results.cascade.prune_rates")
    if not isinstance(base_rates, dict) or not isinstance(fresh_rates, dict):
        raise GateError("cascade.prune_rates must be a dict in both payloads")
    # The total pruned fraction is the cascade's purpose; individual
    # tiers may legitimately trade candidates between each other.
    checks.append(_check_metric(
        "search.cascade.prune_rate_total",
        sum(base_rates.values()),
        sum(fresh_rates.values()),
        threshold_pct, higher_is_worse=False,
    ))
    label = "search.speedup_candidates_per_s"
    if _wall_meaningful(fresh):
        checks.append(_check_metric(
            label,
            _get(baseline, "results.speedup_candidates_per_s"),
            _get(fresh, "results.speedup_candidates_per_s"),
            threshold_pct, higher_is_worse=False,
        ))
    else:
        checks.append(_skip_wall(label))
    return checks


# ----------------------------------------------------------------- serving
def compare_serving(
    baseline: dict, fresh: dict, threshold_pct: float
) -> list[Check]:
    """Gate the serving bench: parity + sim speedup per worker row."""
    _require_benchmark(baseline, "serving", "baseline")
    _require_benchmark(fresh, "serving", "fresh")
    base_rows = {
        (row["workers"], row.get("engine")): row
        for row in _get(baseline, "results")  # type: ignore[union-attr]
    }
    checks: list[Check] = []
    fresh_rows = _get(fresh, "results")
    if not isinstance(fresh_rows, list) or not fresh_rows:
        raise GateError("serving results must be a non-empty list")
    for row in fresh_rows:
        key = (row["workers"], row.get("engine"))
        tag = f"serving.w{row['workers']}.{row.get('engine') or 'auto'}"
        base_row = base_rows.get(key)
        if base_row is None:
            checks.append(Check(
                tag, "fail",
                f"no baseline row for workers={key[0]} engine={key[1]!r} "
                "(regenerate the baseline?)",
            ))
            continue
        checks.append(
            _check_invariant(
                {"row": row}, "row.identical_to_sequential",
                f"{tag}.identical_to_sequential",
            )
        )
        checks.append(_check_metric(
            f"{tag}.sim_serial_s",
            base_row["sim_serial_s"], row["sim_serial_s"],
            threshold_pct, higher_is_worse=True,
        ))
        checks.append(_check_metric(
            f"{tag}.sim_parallel_speedup",
            base_row["sim_parallel_speedup"], row["sim_parallel_speedup"],
            threshold_pct, higher_is_worse=False,
        ))
        label = f"{tag}.throughput_forecasts_per_s"
        if _wall_meaningful(fresh, row, base_row):
            checks.append(_check_metric(
                label,
                base_row["throughput_forecasts_per_s"],
                row["throughput_forecasts_per_s"],
                threshold_pct, higher_is_worse=False,
            ))
        else:
            checks.append(_skip_wall(label))
    return checks


# ---------------------------------------------------------------- ablation
def compare_ablation(
    baseline: dict, fresh: dict, threshold_pct: float
) -> list[Check]:
    """Gate the ablation study: run-ID agreement + baseline-run metrics.

    Component-off deltas are the study's *findings*, not its health —
    they move legitimately as components evolve.  What the gate pins is
    the everything-on baseline run (accuracy, simulated time, cascade
    efficiency) and that the enumerated run-ID set still matches the
    committed one: a drifted ID means the workload or a patch changed
    without the baseline being regenerated, which would silently
    invalidate every cross-PR diff of ``BENCH_ablation.json``.
    """
    _require_benchmark(baseline, "ablation", "baseline")
    _require_benchmark(fresh, "ablation", "fresh")
    checks: list[Check] = []
    base_ids = {r["run_id"] for r in _get(baseline, "runs")}  # type: ignore[union-attr]
    fresh_ids = {r["run_id"] for r in _get(fresh, "runs")}  # type: ignore[union-attr]
    if base_ids == fresh_ids:
        checks.append(Check(
            "ablation.run_ids", "pass", f"{len(base_ids)} stable run IDs"
        ))
    else:
        drifted = sorted(base_ids ^ fresh_ids)
        checks.append(Check(
            "ablation.run_ids", "fail",
            f"run-ID drift ({len(drifted)} IDs differ: "
            f"{', '.join(drifted[:4])}...) — workload/patch changed; "
            "regenerate benchmarks/baselines/BENCH_ablation.json",
        ))
    base_run = _baseline_run(baseline)
    fresh_run = _baseline_run(fresh)
    checks.append(_check_metric(
        "ablation.baseline.mae",
        base_run["serving"]["mae"], fresh_run["serving"]["mae"],
        threshold_pct, higher_is_worse=True,
    ))
    checks.append(_check_metric(
        "ablation.baseline.serving_sim_s",
        base_run["serving"]["sim_s"], fresh_run["serving"]["sim_s"],
        threshold_pct, higher_is_worse=True,
    ))
    if base_run.get("search") and fresh_run.get("search"):
        checks.append(_check_metric(
            "ablation.baseline.search_sim_s",
            base_run["search"]["sim_s"], fresh_run["search"]["sim_s"],
            threshold_pct, higher_is_worse=True,
        ))
        checks.append(_check_metric(
            "ablation.baseline.verified_rate",
            base_run["search"]["verified_rate"],
            fresh_run["search"]["verified_rate"],
            threshold_pct, higher_is_worse=True,
        ))
        checks.append(_check_invariant(
            {"search": fresh_run["search"]},
            "search.reference_exact",
            "ablation.baseline.reference_exact",
        ))
    label = "ablation.baseline.wall_s"
    if _wall_meaningful(fresh):
        checks.append(_check_metric(
            label,
            base_run["serving"]["wall_s"], fresh_run["serving"]["wall_s"],
            threshold_pct, higher_is_worse=True,
        ))
    else:
        checks.append(_skip_wall(label))
    return checks


def _baseline_run(payload: dict) -> dict:
    baseline_id = _get(payload, "baseline_run_id")
    for run in _get(payload, "runs"):  # type: ignore[union-attr]
        if run["run_id"] == baseline_id:
            return run
    raise GateError(f"baseline run {baseline_id!r} missing from runs")


# -------------------------------------------------------------- dispatcher
_COMPARATORS = {
    "search": compare_search,
    "serving": compare_serving,
    "ablation": compare_ablation,
}


def compare_payloads(
    baseline: dict, fresh: dict, threshold_pct: float = 10.0
) -> list[Check]:
    """Dispatch on the payload's ``benchmark`` field."""
    kind = baseline.get("benchmark")
    comparator = _COMPARATORS.get(kind)  # type: ignore[arg-type]
    if comparator is None:
        raise GateError(
            f"no comparator for benchmark {kind!r}; "
            f"known: {sorted(_COMPARATORS)}"
        )
    return comparator(baseline, fresh, threshold_pct)


def gate_directories(
    baseline_dir: pathlib.Path,
    fresh_dir: pathlib.Path,
    threshold_pct: float = 10.0,
) -> list[Check]:
    """Compare every committed baseline against its fresh counterpart.

    A baseline without a fresh file is a failing check (the CI job did
    not produce it), not a silent skip.
    """
    checks: list[Check] = []
    names = sorted(
        p.name for p in baseline_dir.glob("BENCH_*.json")
    )
    if not names:
        raise GateError(f"no BENCH_*.json baselines under {baseline_dir}")
    for name in names:
        fresh_path = fresh_dir / name
        if not fresh_path.exists():
            checks.append(Check(
                name, "fail", f"fresh run missing: {fresh_path}"
            ))
            continue
        baseline = json.loads((baseline_dir / name).read_text())
        fresh = json.loads(fresh_path.read_text())
        checks.extend(compare_payloads(baseline, fresh, threshold_pct))
    return checks


def render_checks(checks: list[Check]) -> str:
    """Human-readable verdict table, failures last so they are visible."""
    marks = {"pass": "ok  ", "skip": "skip", "fail": "FAIL"}
    ordered = sorted(checks, key=lambda c: c.status == "fail")
    lines = [
        f"{marks[c.status]}  {c.name:<42} {c.detail}" for c in ordered
    ]
    n_fail = sum(c.failed for c in checks)
    n_skip = sum(c.status == "skip" for c in checks)
    lines.append(
        f"gate: {len(checks)} checks, {n_fail} failed, {n_skip} skipped"
    )
    return "\n".join(lines)


def update_baselines(baseline_dir: pathlib.Path) -> None:
    """Regenerate every committed smoke baseline in place."""
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for name, argv in BASELINE_FILES.items():
        out = baseline_dir / name
        cmd = [sys.executable] + [
            part.format(out=out) for part in argv
        ]
        print(f"== {name}: {' '.join(cmd)}", flush=True)
        subprocess.run(cmd, check=True, cwd=REPO_ROOT)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--baseline-dir", type=pathlib.Path, default=BASELINE_DIR,
        help="committed baselines (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--fresh-dir", type=pathlib.Path, default=None,
        help="directory holding freshly generated smoke BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold-pct", type=float, default=10.0, metavar="X",
        help="fail on regressions larger than X%% (default: 10)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="regenerate the committed smoke baselines and exit",
    )
    args = parser.parse_args(argv)
    if args.update:
        update_baselines(args.baseline_dir)
        return 0
    if args.fresh_dir is None:
        parser.error("--fresh-dir is required (or use --update)")
    try:
        checks = gate_directories(
            args.baseline_dir, args.fresh_dir, args.threshold_pct
        )
    except GateError as exc:
        print(f"gate error: {exc}", file=sys.stderr)
        return 2
    print(render_checks(checks))
    return 1 if any(c.failed for c in checks) else 0


if __name__ == "__main__":
    sys.exit(main())
