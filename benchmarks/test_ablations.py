"""Ablation benches for the design decisions DESIGN.md calls out.

Not figures from the paper — these quantify the mechanisms the paper
asserts qualitatively: warm-started online GP training, continuous
threshold reuse, the ring-buffer window index, the Table 2 parameter
choices and the Section 6.4.1 history/space trade-off.
"""

from repro.harness import (
    AccuracyScale,
    SearchScale,
    run_history_tradeoff,
    run_parameter_sensitivity,
    run_threshold_reuse_ablation,
    run_warmstart_ablation,
    run_window_reuse_ablation,
)

ACC = AccuracyScale(
    n_sensors=2, n_points=3000, test_points=60, steps=40,
    horizons=(1,), datasets=("ROAD",),
)
SEARCH = SearchScale(n_sensors=1, n_points=12_000, continuous_steps=8)


def test_ablation_warmstart(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_warmstart_ablation(ACC), rounds=1, iterations=1
    )
    save_report("ablation_warmstart", result.render())
    print("\n" + result.render())
    # The paper's fixed-step warm start: ~same accuracy, much cheaper.
    assert result.warm_seconds_per_query < result.cold_seconds_per_query / 1.5
    assert result.warm_mae < result.cold_mae * 1.2


def test_ablation_threshold_reuse(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_threshold_reuse_ablation(SEARCH), rounds=1, iterations=1
    )
    save_report("ablation_threshold_reuse", result.render())
    print("\n" + result.render())
    # Both stay exact; neither variant degenerates to a full scan.
    assert result.reuse_unfiltered < SEARCH.n_points / 2
    assert result.fresh_unfiltered < SEARCH.n_points / 2


def test_ablation_window_reuse(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_window_reuse_ablation(SEARCH), rounds=1, iterations=1
    )
    save_report("ablation_window_reuse", result.render())
    print("\n" + result.render())
    assert result.rebuild_sim_s / result.step_sim_s > 5.0


def test_ablation_parameter_sensitivity(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_parameter_sensitivity(SEARCH), rounds=1, iterations=1
    )
    save_report("ablation_parameters", result.render())
    print("\n" + result.render())
    unfiltered = {(o, r): u for o, r, u, _ in result.rows}
    # Wider bands weaken the bound at fixed omega.
    assert unfiltered[(16, 16)] >= unfiltered[(16, 4)]


def test_ablation_history_tradeoff(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_history_tradeoff(ACC), rounds=1, iterations=1
    )
    save_report("ablation_history", result.render())
    print("\n" + result.render())
    rows = {f: (m, b, c) for f, m, b, c in result.rows}
    # Keeping 10% of history multiplies capacity ~10x (Section 6.4.1)...
    assert rows[0.1][2] > 5 * rows[1.0][2]
    # ...at a real accuracy cost.
    assert rows[0.1][0] >= rows[1.0][0] * 0.95
