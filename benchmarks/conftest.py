"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper at a
laptop-scale workload, asserts the paper's qualitative shape, and saves
the rendered rows/series to ``results/<name>.txt`` (the artifacts that
EXPERIMENTS.md records).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return _save
