"""Fig. 7: Suffix kNN Search running time with varying k.

Paper's claims: SMiLer-Idx is about an order of magnitude faster than the
best competitor (FastGPUScan) and far ahead of GPUScan and FastCPUScan;
its cost is stable across k.
"""

import numpy as np

from repro.harness import SearchScale, run_fig7

SCALE = SearchScale(n_sensors=1, n_points=20_000, continuous_steps=8)
KS = (16, 32, 64, 128)


def test_fig7_suffix_knn_search(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_fig7(SCALE, ks=KS, scan_steps=1), rounds=1, iterations=1
    )
    report = result.render()
    save_report("fig7_knn_search", report)
    print("\n" + report)

    for dataset in result.times:
        # Orderings of the paper's log-scale plot.
        assert result.speedup_over(dataset, "SMiLer-Idx", "FastGPUScan") > 3.0
        assert result.speedup_over(dataset, "SMiLer-Idx", "GPUScan") > 30.0
        assert result.speedup_over(dataset, "SMiLer-Idx", "FastCPUScan") > 30.0
        assert result.speedup_over(dataset, "FastGPUScan", "GPUScan") > 3.0
        # SMiLer-Dir is never faster than the index by a real margin.
        assert result.speedup_over(dataset, "SMiLer-Idx", "SMiLer-Dir") > 0.8

        # Stability across k: the index time varies by far less than the
        # k range itself (paper: "quite stable").
        idx_times = np.asarray(result.times[dataset]["SMiLer-Idx"])
        assert idx_times.max() / idx_times.min() < 2.0
