"""Fig. 12: scalability of SMiLer.

Paper's claims: SMiLer-AR's per-step cost is dominated by the search
step while SMiLer-GP pays extra for online GP training; both run in
real time (well under the 5-10 minute sample interval); a 6 GB card
holds on the order of 1000 one-year sensors.
"""

from repro.harness import AccuracyScale, run_fig12

SCALE = AccuracyScale(
    n_sensors=2, n_points=3500, test_points=40, steps=30, horizons=(1,),
)


def test_fig12_scalability(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_fig12(SCALE, points_per_sensor=52_560),
        rounds=1, iterations=1,
    )
    report = result.render()
    save_report("fig12_scalability", report)
    print("\n" + report)

    for dataset, per_pred in result.step_times.items():
        ar_search, ar_wall = per_pred["SMiLer-AR"]
        gp_search, gp_wall = per_pred["SMiLer-GP"]
        # GP prediction costs more than AR on top of the same search.
        assert gp_wall > ar_wall, dataset
        # Real time: far below a 5-minute sensor interval per step.
        assert gp_wall < 300.0, dataset
        assert ar_search > 0 and gp_search > 0

    # Fig. 12(c): ~1000 one-year sensors per 6 GB card.
    for dataset, capacity in result.capacity.items():
        assert 500 <= capacity <= 5000, (dataset, capacity)
