"""Extension bench: similarity-measure shoot-out (Section 4's survey).

The paper chooses banded DTW citing robustness evidence from the data
mining literature.  On our smooth synthetic sensors the ranking between
DTW and plain Euclidean is close (warping can even blur phase for
1-step forecasting — recorded honestly in EXPERIMENTS.md); what is
robust is that both dominate the edit-distance family (LCSS/EDR), whose
match-counting discards the magnitudes forecasting needs.
"""

from repro.harness import run_measure_comparison


def test_measure_comparison(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_measure_comparison(n_points=1500, steps=16),
        rounds=1, iterations=1,
    )
    report = result.render()
    save_report("measure_comparison", report)
    print("\n" + report)

    dtw = next(v for k, v in result.mae.items() if k.startswith("DTW"))
    euclid = result.mae["Euclidean"]
    # DTW and Euclidean are the serious contenders...
    assert dtw < result.mae["LCSS"]
    assert dtw < result.mae["EDR"]
    assert euclid < result.mae["LCSS"]
    # ...and neither is catastrophically behind the other.
    assert dtw < 10 * euclid
