"""Extension bench: uncertainty calibration beyond MNLPD.

Quantifies two of the paper's qualitative claims:

* SMiLer's GP posterior yields *usable* intervals (coverage near
  nominal),
* bootstrap "cannot work well" as a fix for lazy kNN's missing
  uncertainty (Section 2.1): the resampled-mean variance collapses with
  k, giving badly over-confident intervals.
"""

from repro.harness import AccuracyScale, run_calibration_study

SCALE = AccuracyScale(
    n_sensors=2, n_points=3500, test_points=120, steps=90,
    horizons=(1,), datasets=("ROAD",),
)


def test_calibration_study(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_calibration_study(SCALE), rounds=1, iterations=1
    )
    report = result.render()
    save_report("calibration_study", report)
    print("\n" + report)

    gp = result.rows["SMiLer-GP"]
    boot = result.rows["LazyKNN+bootstrap"]
    # The GP's 95% band covers close to nominally...
    assert 0.80 <= gp[0] <= 1.0
    assert gp[1] < 0.25
    # ...while the bootstrap pseudo-posterior is badly over-confident
    # (the paper's Section 2.1 claim).
    assert boot[0] < gp[0] - 0.2
    assert boot[1] > gp[1]
