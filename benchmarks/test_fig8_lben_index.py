"""Fig. 8: time to compute LB_en — two-level index vs direct scan.

Paper's claim: the index cuts LB_en computation time by more than an
order of magnitude over SMiLer-Dir on every dataset.
"""

from repro.harness import SearchScale, run_fig8

SCALE = SearchScale(n_sensors=2, n_points=20_000, continuous_steps=8)


def test_fig8_lben_index_vs_direct(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_fig8(SCALE), rounds=1, iterations=1
    )
    report = result.render()
    save_report("fig8_lben_index", report)
    print("\n" + report)

    for dataset, (index_s, direct_s) in result.times.items():
        assert direct_s / index_s > 8.0, (
            f"{dataset}: expected ~an order of magnitude, got "
            f"{direct_s / index_s:.1f}x"
        )
