"""Fig. 11: effect of the adaptive auto-tuning mechanism.

Paper's claims: full SMiLer-GP is at least as good as SMiLerNE (single
predictor, k=32/d=64) and SMiLerNS (ensemble without self-adaptive
weights) under both MAE and MNLPD; for AR the same holds on MAE.
"""

from repro.harness import AccuracyScale, run_fig11

SCALE = AccuracyScale(
    n_sensors=1, n_points=12_000, test_points=120, steps=90,
    horizons=(1, 5, 15, 30),
)


def test_fig11_autotuning_ablation(benchmark, save_report):
    result = benchmark.pedantic(lambda: run_fig11(SCALE), rounds=1, iterations=1)
    report = result.render()
    save_report("fig11_autotuning", report)
    print("\n" + report)

    # The paper reports the full ensemble "always better"; at our smaller,
    # noisier scale the robust form of that shape is: (a) the ensemble is
    # never badly behind an ablation anywhere, and (b) at short horizons
    # — where the delayed weight updates have actually converged — it
    # wins or ties the clear majority of comparisons.
    short = [h for h in result.horizons if h <= 5]
    for predictor in ("GP", "AR"):
        full_name = f"SMiLer-{predictor}"
        for ablation in (f"{full_name} (NE)", f"{full_name} (NS)"):
            wins = 0
            comparisons = 0
            for dataset in SCALE.datasets:
                full = result.method_mae(dataset, full_name)
                other = result.method_mae(dataset, ablation)
                assert full.mean() < other.mean() * 1.25, (
                    predictor, ablation, dataset
                )
                for i, h in enumerate(result.horizons):
                    if h not in short:
                        continue
                    wins += full[i] < other[i] * 1.03
                    comparisons += 1
            assert wins >= 0.6 * comparisons, (predictor, ablation, wins)
