"""Fig. 10: MAE and MNLPD against the online competitors.

Paper's claims: SMiLer-GP leads on MAE; SMiLer-GP's MNLPD is far better
than SMiLer-AR's and LazyKNN's on the dynamic ROAD data (kNN variance is
not a calibrated posterior); the GP-vs-AR MAE gap is large on ROAD but
small on the seasonal MALL/NET data.
"""

import numpy as np

from repro.harness import AccuracyScale, run_fig10

SCALE = AccuracyScale(
    n_sensors=2, n_points=12_000, test_points=140, steps=110,
    horizons=(1, 5, 10, 20, 30),
)


def test_fig10_online_models(benchmark, save_report):
    result = benchmark.pedantic(lambda: run_fig10(SCALE), rounds=1, iterations=1)
    report = result.render()
    save_report("fig10_online_accuracy", report)
    print("\n" + report)

    online = ("LazyKNN", "FullHW", "SegHW", "OnlineSVR", "OnlineRR")
    for dataset in SCALE.datasets:
        smiler = result.method_mae(dataset, "SMiLer-GP").mean()
        beaten = sum(
            smiler < result.method_mae(dataset, m).mean() for m in online
        )
        # SMiLer-GP beats the clear majority of online competitors on MAE.
        assert beaten >= 3, dataset

    # The GP advantage over AR concentrates on the dynamic ROAD data
    # (paper: ~2x on ROAD, near-parity on the seasonal datasets).
    gp_road = result.method_mae("ROAD", "SMiLer-GP").mean()
    ar_road = result.method_mae("ROAD", "SMiLer-AR").mean()
    gp_seasonal = np.mean(
        [result.method_mae(d, "SMiLer-GP").mean() for d in ("MALL", "NET")]
    )
    ar_seasonal = np.mean(
        [result.method_mae(d, "SMiLer-AR").mean() for d in ("MALL", "NET")]
    )
    road_gap = ar_road / gp_road
    seasonal_gap = ar_seasonal / gp_seasonal
    assert road_gap > seasonal_gap * 0.8

    # MNLPD: the GP's calibrated posterior beats AR's pseudo-variance.
    for dataset in SCALE.datasets:
        assert (
            result.method_mnlpd(dataset, "SMiLer-GP").mean()
            < result.method_mnlpd(dataset, "SMiLer-AR").mean() + 0.5
        )
