"""Smart-city fleet: many traffic sensors on one (simulated) GPU.

The paper's motivating scenario (Example 1.1): a city operates hundreds
of road sensors and wants real-time short-term forecasts for all of them
without ever training a global model.  This example:

1. builds a fleet of road sensors sharing one simulated 6 GB device,
2. runs continuous prediction for the whole fleet,
3. reports per-sensor accuracy, the device's simulated search time and
   its memory ledger,
4. estimates how many one-year sensors a single card could host
   (the Fig. 12(c) capacity analysis).

Run with::

    python examples/traffic_fleet.py
"""

import numpy as np

from repro import SMiLerConfig, SensorFleet
from repro.harness import format_seconds, index_memory_bytes, render_table
from repro.metrics import mae
from repro.timeseries import make_dataset

N_SENSORS = 4
STEPS = 25


def main() -> None:
    dataset = make_dataset(
        "ROAD", n_sensors=N_SENSORS, n_points=2500, test_points=STEPS
    )
    config = SMiLerConfig(predictor="ar")  # AR keeps the fleet demo snappy
    fleet = SensorFleet(
        [dataset.history[i].values for i in range(N_SENSORS)], config
    )

    errors: dict[int, list[float]] = {i: [] for i in range(N_SENSORS)}
    for step in range(STEPS):
        outputs = fleet.predict_all(horizon=1)
        truths = [dataset.test_tails[i][step] for i in range(N_SENSORS)]
        for i, (output, truth) in enumerate(zip(outputs, truths)):
            errors[i].append(abs(output[1].mean - float(truth)))
        fleet.observe_all(truths)

    rows = []
    for i in range(N_SENSORS):
        truth_tail = dataset.test_tails[i][:STEPS]
        pred_mae = float(np.mean(errors[i]))
        naive = mae(truth_tail[1:], truth_tail[:-1])  # persistence baseline
        rows.append(
            [dataset.history[i].sensor_id, f"{pred_mae:.4f}", f"{naive:.4f}"]
        )
    print(render_table(
        ["sensor", "SMiLer MAE", "persistence MAE"], rows,
        title=f"Fleet of {N_SENSORS} road sensors, {STEPS} continuous steps",
    ))

    device = fleet.backend
    print()
    print(f"simulated GPU time (search kernels): "
          f"{format_seconds(device.elapsed_s)}")
    print(f"device memory in use: {device.allocated_bytes / 1e6:.1f} MB "
          f"of {device.spec.memory_bytes / 1e9:.1f} GB")

    per_sensor = index_memory_bytes(52_560)  # one year at 10-minute sampling
    capacity = device.spec.memory_bytes // per_sensor
    print(f"capacity estimate: ~{capacity} one-year sensors per 6 GB card "
          "(Fig. 12(c))")


if __name__ == "__main__":
    main()
