"""Bring your own data: CSV in, forecasts out.

Shows the full ingestion path a real deployment uses:

1. write a messy CSV (missing cells, irregular length) to disk,
2. load it with :func:`repro.timeseries.load_csv`,
3. repair gaps (:func:`fill_missing`) and re-interpolate to a uniform
   rate (:func:`reinterpolate`),
4. z-normalise, run SMiLer, and report forecasts on the raw scale.

Run with::

    python examples/custom_data.py
"""

import pathlib
import tempfile

import numpy as np

from repro import SMiLer, SMiLerConfig
from repro.timeseries import (
    TimeSeries,
    fill_missing,
    load_csv,
    reinterpolate,
    save_csv,
)


def write_messy_export(path: pathlib.Path) -> None:
    """Fake a data-logger export: a daily cycle with dropped samples."""
    rng = np.random.default_rng(42)
    t = np.arange(2200.0)
    values = 20.0 + 8.0 * np.sin(2 * np.pi * t / 96) + 0.5 * rng.normal(size=t.size)
    values[rng.choice(t.size, size=60, replace=False)] = np.nan  # dropouts
    save_csv(path, {"temperature_c": values})


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "export.csv"
        write_messy_export(path)

        # --- ingest -------------------------------------------------------
        sensor = load_csv(path, column="temperature_c")["temperature_c"]
        raw = sensor.values
        n_missing = int(np.isnan(raw).sum())
        repaired = fill_missing(raw)
        # Pretend the logger sampled at 2x the rate we want.
        resampled = reinterpolate(repaired, 0.5)
        print(f"loaded {raw.size} rows ({n_missing} missing, repaired), "
              f"resampled to {resampled.size} points")

        # --- normalise + split --------------------------------------------
        series = TimeSeries(resampled, sensor_id="temperature_c")
        stats = series.znorm_stats()
        normalised = stats.apply(series.values)
        history, tail = normalised[:-30], normalised[-30:]

        # --- forecast ------------------------------------------------------
        smiler = SMiLer(history, SMiLerConfig(predictor="gp"))
        errors = []
        print("\nstep  forecast (°C)  actual (°C)")
        for step, truth_z in enumerate(tail):
            output = smiler.predict()[1]
            forecast_c = stats.invert(np.array([output.mean]))[0]
            actual_c = stats.invert(np.array([truth_z]))[0]
            if step % 5 == 0:
                print(f"{step:4d}      {forecast_c:8.2f}     {actual_c:8.2f}")
            errors.append(abs(forecast_c - actual_c))
            smiler.observe(float(truth_z))
        print(f"\nMAE on the raw scale: {np.mean(errors):.2f} °C "
              f"(sensor std {stats.std:.2f} °C)")


if __name__ == "__main__":
    main()
