"""Running SMiLer as a service: register → ingest → forecast → snapshot.

The deployment-shaped API: raw-scale readings in, raw-scale forecasts
with intervals out, state snapshots across restarts.  Run with::

    python examples/prediction_service.py
"""

import tempfile

import numpy as np

from repro import PredictionService, SMiLerConfig
from repro.timeseries import make_dataset


def main() -> None:
    config = SMiLerConfig(predictor="ar", horizons=(1, 6))
    service = PredictionService(config, min_history=500)

    # Register three car-park sensors with raw (denormalised) histories.
    dataset = make_dataset("MALL", n_sensors=3, n_points=2600, test_points=30)
    raw_tails = {}
    for i in range(3):
        stats = dataset.norm_stats[i]
        history, tail = dataset.sensor(i)
        sensor_id = history.sensor_id
        service.register(sensor_id, stats.invert(history.values))
        raw_tails[sensor_id] = stats.invert(tail)
    print(f"registered: {service.sensor_ids}")

    # Serve a few live cycles: forecast one step and one hour ahead,
    # then ingest the actual reading.
    print("\nsensor     h   forecast ± std        actual")
    for step in range(3):
        for sensor_id in service.sensor_ids:
            actual = float(raw_tails[sensor_id][step])
            for h in (1, 6):
                fc = service.forecast(sensor_id, horizon=h)
                print(f"{sensor_id:9s}  {h}   {fc.mean:8.1f} ± {fc.std:6.1f}   "
                      f"{actual:8.1f}" if h == 1 else
                      f"{sensor_id:9s}  {h}   {fc.mean:8.1f} ± {fc.std:6.1f}")
            service.ingest(sensor_id, actual)

    # Snapshot, restart, restore — forecasts survive the round-trip.
    with tempfile.TemporaryDirectory() as tmp:
        service.snapshot(tmp)
        restarted = PredictionService(config, min_history=500)
        restarted.restore(tmp)
        sensor_id = restarted.sensor_ids[0]
        before = service.forecast(sensor_id).mean
        after = restarted.forecast(sensor_id).mean
        print(f"\nsnapshot round-trip: forecast {before:.1f} -> {after:.1f} "
              f"(delta {abs(before - after):.2e})")

    status = service.status()
    print(f"fleet status: {status['n_sensors']} sensors, "
          f"{status['device_memory_bytes'] / 1e6:.2f} MB device memory")


if __name__ == "__main__":
    main()
