"""Predictive uncertainty for anomaly monitoring (car-park scenario).

The paper's key advantage over plain kNN regression is a *calibrated*
posterior: SMiLer-GP emits a closed-form variance per prediction.  This
example uses it the way an operator would — as an anomaly monitor:

1. run continuous prediction on a car-park availability sensor,
2. inject a synthetic disruption (a sudden occupancy surge) into the
   observed tail,
3. flag steps whose true value falls outside the 99% predictive
   interval.  The monitor flags the disruption *onset* and the
   *recovery* jump, then goes quiet in between — the semi-lazy model
   adapts to the new regime within a step or two, which is exactly the
   concept-drift resilience the paper claims over eager models.

Run with::

    python examples/uncertainty_monitoring.py
"""

import numpy as np

from repro import SMiLer, SMiLerConfig
from repro.metrics import mnlpd
from repro.timeseries import make_dataset

STEPS = 60
DISRUPTION_AT = 35
DISRUPTION_LEN = 8


def run_monitor(history, tail, predictor: str):
    smiler = SMiLer(history, SMiLerConfig(predictor=predictor))
    flags, truths, means, variances = [], [], [], []
    for step, truth in enumerate(tail):
        output = smiler.predict()[1]
        z = abs(float(truth) - output.mean) / np.sqrt(output.variance)
        flags.append(z > 2.58)  # outside the 99% interval
        truths.append(float(truth))
        means.append(output.mean)
        variances.append(output.variance)
        smiler.observe(float(truth))
    return flags, mnlpd(truths, means, variances)


def main() -> None:
    dataset = make_dataset("MALL", n_sensors=1, n_points=3000, test_points=STEPS)
    history, tail = dataset.sensor(0)
    tail = tail.copy()
    # Synthetic disruption: a flash event empties the car park mid-tail.
    tail[DISRUPTION_AT : DISRUPTION_AT + DISRUPTION_LEN] -= 3.0

    gp_flags, gp_mnlpd = run_monitor(history.values, tail, "gp")
    ar_flags, ar_mnlpd = run_monitor(history.values, tail, "ar")

    print("step  disrupted  GP flag  AR flag")
    for step in range(STEPS):
        disrupted = DISRUPTION_AT <= step < DISRUPTION_AT + DISRUPTION_LEN
        if disrupted or gp_flags[step] or ar_flags[step]:
            print(
                f"{step:4d}  {'yes' if disrupted else '   '}        "
                f"{'⚑' if gp_flags[step] else '.'}        "
                f"{'⚑' if ar_flags[step] else '.'}"
            )

    onset_flagged = gp_flags[DISRUPTION_AT]
    recovery_flagged = any(
        gp_flags[DISRUPTION_AT + DISRUPTION_LEN : DISRUPTION_AT + DISRUPTION_LEN + 2]
    )
    mid_quiet = sum(
        gp_flags[DISRUPTION_AT + 2 : DISRUPTION_AT + DISRUPTION_LEN]
    )
    print()
    print(f"GP monitor: onset flagged: {onset_flagged}; recovery flagged: "
          f"{recovery_flagged}; alarms during the (adapted-to) disruption "
          f"plateau: {mid_quiet}")
    print(f"MNLPD under disruption:  SMiLer-GP {gp_mnlpd:8.3f}   "
          f"SMiLer-AR {ar_mnlpd:8.3f}")
    print("The semi-lazy model flags regime *changes* and then adapts "
          "within a step or two — no retraining required.")


if __name__ == "__main__":
    main()
