"""Quickstart: predict a single sensor with SMiLer in ~30 lines.

Builds a synthetic road-traffic sensor, hands its history to SMiLer, and
walks 40 continuous prediction steps: predict one step ahead, compare
with the truth, reveal the truth, repeat.  Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import SMiLer, SMiLerConfig
from repro.metrics import mae, mnlpd
from repro.timeseries import make_dataset


def main() -> None:
    # One z-normalised road-occupancy sensor with a 40-point held-out tail.
    dataset = make_dataset("ROAD", n_sensors=1, n_points=3000, test_points=40)
    history, tail = dataset.sensor(0)

    # Paper-default configuration (Table 2): 3x3 ensemble of GP predictors,
    # DTW warping width 8, index window 16, one-step-ahead prediction.
    smiler = SMiLer(history.values, SMiLerConfig(predictor="gp"))

    truths, means, variances = [], [], []
    print("step   prediction      truth   95% interval")
    for step, truth in enumerate(tail):
        output = smiler.predict()[1]          # horizon -> EnsembleOutput
        half_width = 1.96 * np.sqrt(output.variance)
        print(
            f"{step:4d}   {output.mean:+10.4f}  {truth:+9.4f}   "
            f"[{output.mean - half_width:+.3f}, {output.mean + half_width:+.3f}]"
        )
        truths.append(float(truth))
        means.append(output.mean)
        variances.append(output.variance)
        smiler.observe(float(truth))          # reveal -> auto-tune + index step

    print()
    print(f"MAE over {len(truths)} steps : {mae(truths, means):.4f}")
    print(f"MNLPD                : {mnlpd(truths, means, variances):.4f}")
    weights = smiler.ensemble(1).weights()
    best = max(weights, key=weights.get)
    print(f"auto-tuned best cell : k={best[0]}, d={best[1]} "
          f"(weight {weights[best]:.2f})")


if __name__ == "__main__":
    main()
