"""Using the Suffix kNN Search engine directly (Section 4).

SMiLer's search step is a useful library on its own: given a sensor's
history, find — for several suffix lengths at once — the k most similar
historical segments under banded DTW, with exact results and index
reuse across continuous steps.  This example:

1. plants a repeating motif in a noisy stream,
2. runs the Suffix kNN Search for item lengths {32, 64, 96},
3. shows that the engine finds the planted occurrences exactly,
4. demonstrates continuous stepping and the filter statistics,
5. cross-checks against the FastCPUScan baseline.

Run with::

    python examples/suffix_knn_search.py
"""

import numpy as np

from repro.dtw import fast_cpu_scan
from repro.harness import format_seconds, render_table
from repro.index import SuffixKnnEngine, SuffixSearchConfig


def build_stream(n=6000, seed=7) -> np.ndarray:
    """Noisy stream with a 96-point motif planted every ~800 points."""
    rng = np.random.default_rng(seed)
    stream = 0.3 * rng.normal(size=n)
    motif = np.sin(np.linspace(0, 4 * np.pi, 96)) * 1.5
    for start in range(500, n - 200, 800):
        stream[start : start + 96] += motif
    # End the stream inside a motif occurrence so the suffix matches it.
    stream[n - 96 :] += motif
    return stream


def main() -> None:
    stream = build_stream()
    config = SuffixSearchConfig(
        item_lengths=(32, 64, 96), k_max=8, omega=16, rho=8, margin=1
    )
    engine = SuffixKnnEngine(stream, config)
    answers = engine.search()

    rows = []
    for d, answer in sorted(answers.items()):
        starts = ", ".join(str(s) for s in answer.starts[:4])
        rows.append([
            d,
            f"{answer.distances[0]:.3f}",
            starts,
            f"{answer.candidates_unfiltered}/{answer.candidates_total}",
            format_seconds(answer.verification_sim_s),
        ])
    print(render_table(
        ["d", "best DTW", "nearest starts", "verified/total", "sim time"],
        rows,
        title="Suffix kNN Search over one engine pass (motif every ~800 pts)",
    ))

    # The stream ends inside a motif occurrence, so the very best matches
    # are trivially-shifted self-neighbours near the end; the *planted
    # interior sites* (500, 1300, 2100, ...) must also surface in the top-k.
    planted = set(range(500, stream.size - 200, 800))
    interior_hits = [
        s for s in answers[96].starts
        if any(abs(int(s) - p) <= 10 for p in planted)
    ]
    print(f"\ntop-8 96-length matches: {answers[96].starts.tolist()}")
    print(f"planted interior sites recovered in top-8: {interior_hits}")
    assert interior_hits, "planted motif occurrences must be retrieved"

    # Continuous stepping: feed 5 new points; reuse keeps it cheap.
    before = engine.backend.elapsed_s
    for value in 0.3 * np.random.default_rng(1).normal(size=5):
        answers = engine.step(float(value))
    print(f"5 continuous steps took {format_seconds(engine.backend.elapsed_s - before)} "
          "of simulated device time")

    # Exactness spot-check against the CPU scan baseline.  The engine's
    # margin=1 excludes exactly the trivial self-match at t = n - d, which
    # for the overlap-based `exclude` means the zone (n - 1, n).
    d = 64
    reference = fast_cpu_scan(
        engine.item_query(d), engine.series, k=8, rho=8,
        exclude=(engine.series.size - 1, engine.series.size),
    )
    got = np.sort(answers[d].distances)
    expected = np.sort(reference.distances)
    assert np.allclose(got, expected, atol=1e-9), "engine must stay exact"
    print("cross-check vs FastCPUScan: identical kNN distances ✓")


if __name__ == "__main__":
    main()
